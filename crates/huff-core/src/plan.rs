//! Kernel-fusion plan.
//!
//! PR 5's roofline analyzer showed three modeled kernels leaving
//! performance on the table: `hist_gridwise_reduction` and
//! `enc_blockwise_len` are latency-bound even at the 64 MB acceptance
//! scale (their total time is dominated by launch ramp + grid syncs, not
//! by the bytes they move), and `enc_breaking_backtrace` emits its sparse
//! sidecar through per-unit `Access::Random` writes. A [`KernelPlan`]
//! selects the fused/restructured variant of each:
//!
//! - **`fused_histogram`** — single-kernel full privatization
//!   (Gómez-Luna): blocks reduce their shared-memory replicas and commit
//!   them straight into the global histogram with consecutive-address
//!   atomics, eliminating the partials round-trip and the tree-reduce
//!   launch. The two-kernel path is retained automatically when the
//!   histogram does not fit a block's shared memory.
//! - **`fused_len`** — the per-chunk bit-length prefix sum runs as a
//!   decoupled-lookback epilogue inside the shuffle-merge kernel
//!   ([`gpu_sim::prefix::single_pass_scan`]) instead of as its own tiny
//!   `enc_blockwise_len` launch.
//! - **`compacted_backtrace`** — breaking units are emitted via
//!   warp-aggregated compaction (ballot + block-local scan + one
//!   coalesced segment write per block) instead of per-unit random
//!   scatter.
//!
//! Fusion is a *modeling/scheduling* choice only: every plan produces
//! bit-identical archives, frames and sidecars (proptest-enforced in
//! `tests/kernel_fusion.rs`), because the host-side functional result
//! never depends on the plan.

use serde::{Deserialize, Serialize};

/// Which fused kernel variants the encode-side pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelPlan {
    /// Single-launch full-privatization histogram (when bins fit shared
    /// memory) instead of blockwise + gridwise reduction kernels.
    pub fused_histogram: bool,
    /// Chunk-length prefix sum fused into the shuffle-merge kernel as a
    /// single-pass scan epilogue instead of a separate launch.
    pub fused_len: bool,
    /// Warp-aggregated coalesced compaction for the breaking sidecar
    /// instead of per-unit random writes.
    pub compacted_backtrace: bool,
}

impl KernelPlan {
    /// The fully fused plan — the shipping default.
    pub const fn fused() -> Self {
        KernelPlan { fused_histogram: true, fused_len: true, compacted_backtrace: true }
    }

    /// The pre-fusion plan: every kernel launches and writes exactly as
    /// the paper's Table I decomposition does. Kept as the comparison
    /// baseline for `rsh profile --compare` and the bench sweeps.
    pub const fn unfused() -> Self {
        KernelPlan { fused_histogram: false, fused_len: false, compacted_backtrace: false }
    }

    /// Stable short name used in bench rows and CLI output.
    pub fn name(&self) -> &'static str {
        if *self == KernelPlan::fused() {
            "fused"
        } else if *self == KernelPlan::unfused() {
            "unfused"
        } else {
            "partial"
        }
    }

    /// Pack the plan into one byte (bit 0 = histogram, bit 1 = len,
    /// bit 2 = backtrace) for the `rsh-tune-v1` cache.
    pub fn code(&self) -> u8 {
        (self.fused_histogram as u8)
            | ((self.fused_len as u8) << 1)
            | ((self.compacted_backtrace as u8) << 2)
    }

    /// Inverse of [`KernelPlan::code`]. Returns `None` if reserved bits
    /// are set, so cache readers fail open on entries written by a newer
    /// format revision.
    pub fn from_code(code: u8) -> Option<Self> {
        if code & !0b111 != 0 {
            return None;
        }
        Some(KernelPlan {
            fused_histogram: code & 1 != 0,
            fused_len: code & 2 != 0,
            compacted_backtrace: code & 4 != 0,
        })
    }
}

impl Default for KernelPlan {
    fn default() -> Self {
        KernelPlan::fused()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_fused() {
        assert_eq!(KernelPlan::default(), KernelPlan::fused());
        assert_eq!(KernelPlan::default().name(), "fused");
        assert_eq!(KernelPlan::unfused().name(), "unfused");
    }

    #[test]
    fn code_roundtrips_all_eight_plans() {
        for code in 0u8..8 {
            let plan = KernelPlan::from_code(code).unwrap();
            assert_eq!(plan.code(), code);
        }
        assert_eq!(KernelPlan::fused().code(), 0b111);
        assert_eq!(KernelPlan::unfused().code(), 0);
        assert_eq!(KernelPlan::from_code(0b1000), None);
    }

    #[test]
    fn partial_plans_report_partial() {
        let p = KernelPlan { fused_histogram: true, fused_len: false, compacted_backtrace: true };
        assert_eq!(p.name(), "partial");
    }
}
