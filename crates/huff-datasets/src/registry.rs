//! The paper's six evaluation datasets, as named presets.
//!
//! Each entry records the paper's published statistics (Table V) and maps
//! to a synthetic generator matched on the statistics that drive every
//! result: symbol count, native symbol width, and average codeword
//! bitwidth. `scale` lets benches run the same workload at a fraction of
//! the paper's size (the modeled device numbers scale with it).

use serde::Serialize;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PaperDataset {
    /// enwik8 — first 10^8 bytes of English Wikipedia XML (95 MB).
    Enwik8,
    /// enwik9 — first 10^9 bytes (954 MB).
    Enwik9,
    /// mr — medical MRI image from the Silesia corpus (9.5 MB).
    Mr,
    /// nci — chemical-database text from the Silesia corpus (32 MB).
    Nci,
    /// Flan_1565 — Rutherford-Boeing sparse matrix (1.4 GB).
    Flan1565,
    /// Nyx-Quant — SZ quantization codes of Nyx baryon_density (256 MB).
    NyxQuant,
}

impl PaperDataset {
    /// All six, in Table V's order.
    pub fn all() -> [PaperDataset; 6] {
        [
            PaperDataset::Enwik8,
            PaperDataset::Enwik9,
            PaperDataset::Mr,
            PaperDataset::Nci,
            PaperDataset::Flan1565,
            PaperDataset::NyxQuant,
        ]
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Enwik8 => "enwik8",
            PaperDataset::Enwik9 => "enwik9",
            PaperDataset::Mr => "mr",
            PaperDataset::Nci => "nci",
            PaperDataset::Flan1565 => "Flan_1565",
            PaperDataset::NyxQuant => "Nyx-Quant",
        }
    }

    /// Native symbol width in bytes (1 = generic byte-per-symbol coding;
    /// SZ stores quantization codes as `int32`, so Nyx-Quant's 256 MB is
    /// 64M four-byte symbols — consistent with the paper's throughput
    /// arithmetic).
    pub fn symbol_bytes(&self) -> u64 {
        match self {
            PaperDataset::NyxQuant => 4,
            _ => 1,
        }
    }

    /// Codebook span (histogram size).
    pub fn num_symbols(&self) -> usize {
        match self {
            PaperDataset::NyxQuant => 1024,
            _ => 256,
        }
    }

    /// The paper's dataset size in bytes (Table V).
    pub fn paper_bytes(&self) -> u64 {
        match self {
            PaperDataset::Enwik8 => 95 << 20,
            PaperDataset::Enwik9 => 954 << 20,
            PaperDataset::Mr => 9_500 << 10,
            PaperDataset::Nci => 32 << 20,
            PaperDataset::Flan1565 => 1_400 << 20,
            PaperDataset::NyxQuant => 256 << 20,
        }
    }

    /// The paper's measured average codeword bitwidth (Table V).
    pub fn paper_avg_bits(&self) -> f64 {
        match self {
            PaperDataset::Enwik8 => 5.1639,
            PaperDataset::Enwik9 => 5.2124,
            PaperDataset::Mr => 4.0165,
            PaperDataset::Nci => 2.7307,
            PaperDataset::Flan1565 => 4.1428,
            PaperDataset::NyxQuant => 1.0272,
        }
    }

    /// The reduction factor the paper selects for this dataset (Table V's
    /// "#REDUCE" column).
    pub fn paper_reduction(&self) -> u32 {
        match self {
            PaperDataset::Nci | PaperDataset::NyxQuant => 3,
            _ => 2,
        }
    }

    /// Number of symbols at a given scale of the paper's size.
    pub fn symbols_at_scale(&self, scale: f64) -> usize {
        ((self.paper_bytes() as f64 * scale) / self.symbol_bytes() as f64) as usize
    }

    /// Generate `n` symbols of this dataset's synthetic equivalent,
    /// calibrated to the paper's average codeword bitwidth.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u16> {
        match self {
            PaperDataset::NyxQuant => crate::quant::nyx_quant(n, seed),
            d => crate::calibrated::sample(d.num_symbols(), d.paper_avg_bits(), n, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_with_unique_names() {
        let names: std::collections::HashSet<&str> =
            PaperDataset::all().iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn generated_symbols_fit_symbol_space() {
        for d in PaperDataset::all() {
            let data = d.generate(20_000, 11);
            assert_eq!(data.len(), 20_000, "{}", d.name());
            let space = d.num_symbols();
            assert!(
                data.iter().all(|&s| (s as usize) < space),
                "{} exceeds space {space}",
                d.name()
            );
        }
    }

    #[test]
    fn average_bitwidths_track_paper_within_tolerance() {
        // The generators are matched on β; allow a generous band — the
        // exact paper-vs-measured values are recorded in EXPERIMENTS.md.
        for d in PaperDataset::all() {
            let data = d.generate(300_000, 17);
            let mut freqs = vec![0u64; d.num_symbols()];
            for &s in &data {
                freqs[s as usize] += 1;
            }
            let lens = huff_core::tree::codeword_lengths(&freqs).unwrap();
            let avg = huff_core::entropy::average_bitwidth(&freqs, &lens);
            let target = d.paper_avg_bits();
            assert!(
                (avg - target).abs() / target < 0.35,
                "{}: paper {target}, ours {avg}",
                d.name()
            );
        }
    }

    #[test]
    fn scaling_arithmetic() {
        // SZ quantization codes are int32: 256 MB -> 64M symbols.
        let d = PaperDataset::NyxQuant;
        assert_eq!(d.symbols_at_scale(1.0), (256 << 20) / 4);
        assert_eq!(d.symbols_at_scale(0.5), (128 << 20) / 4);
        assert_eq!(PaperDataset::Enwik8.symbols_at_scale(1.0), 95 << 20);
    }

    #[test]
    fn reduction_factors_match_table5() {
        assert_eq!(PaperDataset::NyxQuant.paper_reduction(), 3);
        assert_eq!(PaperDataset::Nci.paper_reduction(), 3);
        assert_eq!(PaperDataset::Enwik8.paper_reduction(), 2);
    }
}
