//! Synthetic histograms for codebook-construction sweeps.
//!
//! Table IV evaluates multithreaded codebook construction on
//! 16384-65536-symbol histograms, which exceed what the real datasets
//! provide ("the symbol numbers in the tested real datasets are no more
//! than 8192, so we use synthetic data for more than 8192 symbols" —
//! normally distributed, footnote 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A discretized-normal histogram over `n` symbols: bin `i`'s frequency is
/// proportional to the Gaussian density at its position, scaled so the
/// total is about `total`, with every bin at least 1 (all symbols coded).
pub fn normal(n: usize, total: u64, seed: u64) -> Vec<u64> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mu = n as f64 / 2.0;
    let sigma = n as f64 / 8.0;
    let mut h: Vec<u64> = (0..n)
        .map(|i| {
            let z = (i as f64 - mu) / sigma;
            let density = (-0.5 * z * z).exp();
            let jitter: f64 = rng.gen_range(0.9..1.1);
            ((total as f64 / (sigma * 2.5066)) * density * jitter) as u64 + 1
        })
        .collect();
    // Nudge the sum toward `total` (cosmetic; construction cost depends on
    // n, not the exact mass).
    let sum: u64 = h.iter().sum();
    if sum < total {
        h[n / 2] += total - sum;
    }
    h
}

/// A uniform histogram (worst case for codebook balance checks).
pub fn uniform(n: usize, per_bin: u64) -> Vec<u64> {
    vec![per_bin.max(1); n]
}

/// An exponentially decaying histogram (deep-tree stressor).
pub fn exponential(n: usize, ratio: f64, seed: u64) -> Vec<u64> {
    assert!(ratio > 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = 1.0e15;
    (0..n)
        .map(|_| {
            let jitter: f64 = rng.gen_range(0.95..1.05);
            let v = (f * jitter).max(1.0) as u64;
            f /= ratio;
            v.max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_histogram_shape() {
        let h = normal(1024, 1_000_000, 1);
        assert_eq!(h.len(), 1024);
        assert!(h.iter().all(|&f| f >= 1));
        // Centre dominates edges.
        assert!(h[512] > 100 * h[0].min(h[1023]).max(1));
    }

    #[test]
    fn normal_total_mass_close() {
        let h = normal(65536, 10_000_000, 2);
        let sum: u64 = h.iter().sum();
        assert!((10_000_000..13_000_000).contains(&sum), "sum {sum}");
    }

    #[test]
    fn normal_feeds_codebook_construction() {
        for n in [16384usize, 32768, 65536] {
            let h = normal(n, 1_000_000, 3);
            let book = huff_core::build_codebook(&h, 8).unwrap();
            assert_eq!(book.coded_symbols(), n);
        }
    }

    #[test]
    fn uniform_and_exponential() {
        assert_eq!(uniform(8, 5), vec![5; 8]);
        let e = exponential(64, 2.0, 4);
        assert!(e[0] > e[32]);
        assert!(e.iter().all(|&f| f >= 1));
        let book = huff_core::build_codebook(&e, 4).unwrap();
        assert!(book.max_len() >= 30, "deep tree expected, H={}", book.max_len());
    }
}
