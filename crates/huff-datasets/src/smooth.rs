//! Smooth-field generators — the `mr` (medical MRI) and Flan_1565 (sparse
//! matrix) stand-ins.
//!
//! * [`mri_like`] — a quantized band-limited 2-D field: random low-
//!   frequency cosine modes plus noise, quantized to bytes. Matches the
//!   `mr` corpus shape (average bitwidth ≈ 4.0, Table V).
//! * [`rutherford_boeing_like`] — ASCII text laid out like a
//!   Rutherford-Boeing sparse-matrix file (fixed-width columns of signed
//!   scientific-notation numerals), matching Flan_1565's byte statistics
//!   (average bitwidth ≈ 4.14).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quantized smooth 2-D field, row-major, `width * height` bytes.
pub fn mri_like(width: usize, height: usize, seed: u64) -> Vec<u16> {
    let mut rng = StdRng::seed_from_u64(seed);
    const MODES: usize = 6;
    let modes: Vec<(f64, f64, f64, f64)> = (0..MODES)
        .map(|_| {
            (
                rng.gen_range(0.5..4.0),                   // kx
                rng.gen_range(0.5..4.0),                   // ky
                rng.gen_range(0.0..std::f64::consts::TAU), // phase
                rng.gen_range(0.3..1.0),                   // amplitude
            )
        })
        .collect();
    let mut out = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let (fx, fy) = (x as f64 / width as f64, y as f64 / height as f64);
            let mut v = 0.0;
            for &(kx, ky, ph, a) in &modes {
                v += a * (std::f64::consts::TAU * (kx * fx + ky * fy) + ph).cos();
            }
            // Background-dominated like MRI: clamp the dark half.
            let noise: f64 = rng.gen_range(-0.08..0.08);
            let v = ((v / MODES as f64 + noise + 0.25).max(0.0) * 220.0).min(255.0);
            out.push(v as u16);
        }
    }
    out
}

/// ASCII bytes shaped like a Rutherford-Boeing sparse-matrix file body.
pub fn rutherford_boeing_like(n: usize, seed: u64) -> Vec<u16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n + 32);
    while out.len() < n {
        // An index column and a value in scientific notation.
        let idx: u32 = rng.gen_range(1..1_565_000);
        let mantissa: f64 = rng.gen_range(-9.999_999..9.999_999);
        let exp: i32 = rng.gen_range(-12..3);
        let line = format!("{idx:>9} {mantissa:+.7}E{exp:+03}\n");
        out.extend(line.bytes().map(u16::from));
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_bits(data: &[u16]) -> f64 {
        let mut freqs = vec![0u64; 256];
        for &s in data {
            freqs[s as usize] += 1;
        }
        let lens = huff_core::tree::codeword_lengths(&freqs).unwrap();
        huff_core::entropy::average_bitwidth(&freqs, &lens)
    }

    #[test]
    fn mri_like_is_compressible_smooth_field() {
        // The realistic field lands mid-entropy; the registry's `Mr`
        // preset pins the exact paper bitwidth via `calibrated`.
        let data = mri_like(512, 512, 1);
        let avg = avg_bits(&data);
        assert!(avg > 3.0 && avg < 7.5, "avg {avg}");
    }

    #[test]
    fn mri_values_are_bytes() {
        let data = mri_like(64, 64, 2);
        assert_eq!(data.len(), 64 * 64);
        assert!(data.iter().all(|&v| v < 256));
    }

    #[test]
    fn rb_text_is_ascii() {
        let data = rutherford_boeing_like(10_000, 3);
        assert_eq!(data.len(), 10_000);
        assert!(data.iter().all(|&b| b == 10 || (32..127).contains(&b)));
    }

    #[test]
    fn rb_bitwidth_near_paper() {
        let data = rutherford_boeing_like(300_000, 4);
        let avg = avg_bits(&data);
        assert!((avg - 4.1428).abs() < 1.0, "avg {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(mri_like(32, 32, 5), mri_like(32, 32, 5));
        assert_eq!(rutherford_boeing_like(100, 6), rutherford_boeing_like(100, 6));
    }
}
