//! Text-corpus generators — enwik and nci stand-ins.
//!
//! * [`markov_text`] — order-1 Markov chain over bytes with a Zipf-shaped
//!   stationary distribution; tuned presets match the byte-level average
//!   codeword bitwidths Table V reports: enwik8/9 ≈ 5.16-5.21 bits, the
//!   nci chemical database ≈ 2.73 bits (highly repetitive structured
//!   text).
//! * [`zipf`] — plain Zipf sampler used as a building block.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `n` symbols from a Zipf distribution with exponent `s` over
/// `num_symbols` ranks (rank 0 most probable).
pub fn zipf(n: usize, num_symbols: usize, s: f64, seed: u64) -> Vec<u16> {
    assert!((2..=65536).contains(&num_symbols));
    let weights: Vec<f64> = (1..=num_symbols).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(num_symbols);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(num_symbols - 1) as u16
        })
        .collect()
}

/// Order-1 Markov byte text: each state's transition row is a Zipf
/// distribution over a random permutation of successors. `zipf_s` controls
/// per-state predictability; the marginal distribution ends up Zipf-ish,
/// like natural-language byte streams.
pub fn markov_text(n: usize, num_symbols: usize, zipf_s: f64, seed: u64) -> Vec<u16> {
    assert!((2..=4096).contains(&num_symbols));
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf row template CDF.
    let weights: Vec<f64> = (1..=num_symbols).map(|r| (r as f64).powf(-zipf_s)).collect();
    let total: f64 = weights.iter().sum();
    let mut row_cdf = Vec::with_capacity(num_symbols);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        row_cdf.push(acc);
    }

    // Per-state successor permutations (ranked successor tables).
    let perms: Vec<Vec<u16>> = (0..num_symbols)
        .map(|_| {
            let mut p: Vec<u16> = (0..num_symbols as u16).collect();
            // Fisher-Yates.
            for i in (1..p.len()).rev() {
                let j = rng.gen_range(0..=i);
                p.swap(i, j);
            }
            p
        })
        .collect();

    let mut state = 0usize;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let rank = row_cdf.partition_point(|&c| c < u).min(num_symbols - 1);
            let next = perms[state][rank];
            state = next as usize;
            next
        })
        .collect()
}

/// enwik-like preset: 256 byte symbols, byte-level average codeword
/// bitwidth ≈ 5.16 (Table V). Calibrated on the marginal distribution —
/// the statistic every kernel in the pipeline depends on.
pub fn enwik_like(n: usize, seed: u64) -> Vec<u16> {
    crate::calibrated::sample(256, 5.1639, n, seed)
}

/// nci-like preset: highly repetitive structured chemical-database text,
/// average bitwidth ≈ 2.73 (Table V).
pub fn nci_like(n: usize, seed: u64) -> Vec<u16> {
    crate::calibrated::sample(256, 2.7307, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_bits(data: &[u16], bins: usize) -> f64 {
        let mut freqs = vec![0u64; bins];
        for &s in data {
            freqs[s as usize] += 1;
        }
        let lens = huff_core::tree::codeword_lengths(&freqs).unwrap();
        huff_core::entropy::average_bitwidth(&freqs, &lens)
    }

    #[test]
    fn zipf_rank_ordering() {
        let data = zipf(100_000, 64, 1.2, 1);
        let mut freqs = vec![0u64; 64];
        for &s in &data {
            freqs[s as usize] += 1;
        }
        assert!(freqs[0] > freqs[10]);
        assert!(freqs[1] > freqs[30]);
    }

    #[test]
    fn enwik_like_bitwidth_near_paper() {
        let data = enwik_like(400_000, 2);
        let avg = avg_bits(&data, 256);
        assert!((avg - 5.16).abs() < 0.3, "avg {avg}");
    }

    #[test]
    fn nci_like_bitwidth_near_paper() {
        let data = nci_like(400_000, 3);
        let avg = avg_bits(&data, 256);
        assert!((avg - 2.73).abs() < 0.3, "avg {avg}");
    }

    #[test]
    fn markov_visits_many_states() {
        let data = markov_text(50_000, 128, 1.0, 4);
        let distinct: std::collections::HashSet<u16> = data.iter().copied().collect();
        assert!(distinct.len() > 64);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(enwik_like(500, 7), enwik_like(500, 7));
        assert_ne!(enwik_like(500, 7), enwik_like(500, 8));
    }
}
