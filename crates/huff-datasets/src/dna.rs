//! DNA sequence + k-mer symbolization — the gbbct1.seq (GenBank) stand-in.
//!
//! The paper evaluates codebook construction on GenBank bacterial
//! sequences symbolized as k-mers; "data other than the 4 bases of DNA are
//! stored in gbbct1.seq, and as a result, the number of input symbols
//! needed is greater than `4^k`" (Section V-B1). Table III's resulting
//! codebook sizes are 2048 / 4096 / 8192 for k = 3 / 4 / 5.
//!
//! The synthetic equivalent reproduces that structure: clean k-mers map
//! into the dense `4^k` region; k-mers touching ambiguity codes, digits or
//! formatting bytes (GenBank files are ASCII records, not raw bases) land
//! in a sparse high region, padding the symbol space to the paper's
//! `2^(k+8)` sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Symbol-space size matching Table III: `2^(k+8)`.
pub fn symbol_space(k: usize) -> usize {
    assert!((2..=7).contains(&k));
    1usize << (k + 8)
}

/// Generate a synthetic GenBank-like byte stream of length `n`: mostly
/// ACGT with realistic GC skew, sprinkled with ambiguity codes, digits and
/// record formatting.
pub fn sequence(n: usize, seed: u64) -> Vec<u8> {
    const EXTRAS: &[u8] = b"NRYKMSW0123456789 /=\n";
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            if u < 0.04 {
                EXTRAS[rng.gen_range(0..EXTRAS.len())]
            } else if u < 0.28 {
                b'A'
            } else if u < 0.53 {
                b'C'
            } else if u < 0.78 {
                b'G'
            } else {
                b'T'
            }
        })
        .collect()
}

/// Symbolize a byte stream into non-overlapping k-mer symbols within
/// [`symbol_space`]`(k)`. Clean ACGT k-mers pack into 2 bits per base;
/// dirty k-mers hash into the region above `4^k`.
pub fn kmer_symbols(seq: &[u8], k: usize) -> Vec<u16> {
    let space = symbol_space(k);
    let base_region = 1usize << (2 * k);
    let dirty_region = space - base_region;
    seq.chunks_exact(k)
        .map(|w| {
            let mut code = 0usize;
            let mut clean = true;
            for &b in w {
                let v = match b {
                    b'A' => 0,
                    b'C' => 1,
                    b'G' => 2,
                    b'T' => 3,
                    _ => {
                        clean = false;
                        0
                    }
                };
                code = (code << 2) | v;
            }
            if clean {
                code as u16
            } else {
                let h = w.iter().fold(0xcbf29ce484222325u64, |a, &b| {
                    (a ^ u64::from(b)).wrapping_mul(0x100000001b3)
                });
                (base_region + (h as usize % dirty_region)) as u16
            }
        })
        .collect()
}

/// Convenience: generate and symbolize `n_symbols` k-mers. Returns
/// `(symbols, symbol_space)`.
pub fn kmer_dataset(n_symbols: usize, k: usize, seed: u64) -> (Vec<u16>, usize) {
    let seq = sequence(n_symbols * k, seed);
    (kmer_symbols(&seq, k), symbol_space(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_spaces_match_paper() {
        // Table III: 3-mer -> 2048, 4-mer -> 4096, 5-mer -> 8192.
        assert_eq!(symbol_space(3), 2048);
        assert_eq!(symbol_space(4), 4096);
        assert_eq!(symbol_space(5), 8192);
    }

    #[test]
    fn kmer_codes_in_range() {
        for k in [3, 4, 5] {
            let (syms, space) = kmer_dataset(50_000, k, 2);
            assert!(syms.iter().all(|&s| (s as usize) < space), "k={k}");
            assert_eq!(syms.len(), 50_000);
        }
    }

    #[test]
    fn clean_kmers_decode_to_2bit_packing() {
        let syms = kmer_symbols(b"ACGTAC", 3);
        // "ACG" = 0b00_01_10 = 6; "TAC" = 0b11_00_01 = 49.
        assert_eq!(syms, vec![6, 49]);
    }

    #[test]
    fn dirty_kmers_land_above_base_region() {
        let syms = kmer_symbols(b"ANA", 3);
        assert!(syms[0] as usize >= 64);
        assert!((syms[0] as usize) < 2048);
    }

    #[test]
    fn large_sample_populates_both_regions() {
        let (syms, _) = kmer_dataset(300_000, 3, 3);
        let distinct: std::collections::HashSet<u16> = syms.iter().copied().collect();
        assert!(distinct.len() > 500, "only {} distinct 3-mer symbols", distinct.len());
        let dirty = syms.iter().filter(|&&s| s as usize >= 64).count();
        assert!(dirty > 0, "no dirty k-mers generated");
        // The dense ACGT region still dominates the mass.
        assert!((dirty as f64) < 0.3 * syms.len() as f64);
    }

    #[test]
    fn codebook_construction_feeds_from_kmers() {
        let (syms, space) = kmer_dataset(100_000, 4, 4);
        let mut freqs = vec![0u64; space];
        for &s in &syms {
            freqs[s as usize] += 1;
        }
        let book = huff_core::build_codebook(&freqs, 8).unwrap();
        assert!(book.coded_symbols() > 256);
    }

    #[test]
    fn sequence_is_mostly_acgt() {
        let seq = sequence(100_000, 1);
        let acgt = seq.iter().filter(|b| b"ACGT".contains(b)).count();
        assert!(acgt as f64 / seq.len() as f64 > 0.9);
    }
}
