//! # huff-datasets — synthetic stand-ins for the paper's evaluation data
//!
//! The paper evaluates on six real corpora (enwik8/9, mr, nci, Flan_1565,
//! Nyx-Quant) plus synthetic normal histograms. Those files are not
//! redistributable here, and every reported result depends on the input
//! only through its histogram statistics — so this crate generates
//! synthetic equivalents matched on the statistics that matter: symbol
//! count, native symbol width, and frequency-weighted average codeword
//! bitwidth (Table V's "AVG. BITS" column). See DESIGN.md's substitution
//! table for the per-dataset rationale.
//!
//! * [`registry::PaperDataset`] — the six named presets;
//! * [`quant`] — two-sided-geometric quantization codes (Nyx-Quant);
//! * [`text`] — Markov/Zipf byte text (enwik, nci);
//! * [`dna`] — DNA sequences + k-mer symbolization (gbbct1.seq, Table III);
//! * [`smooth`] — quantized smooth fields (mr) and Rutherford-Boeing ASCII
//!   (Flan_1565);
//! * [`histograms`] — synthetic normal histograms (Table IV);
//! * [`calibrated`] — exact-average-bitwidth synthesis for calibrated
//!   sweeps (Fig. 3).

#![warn(missing_docs)]

pub mod calibrated;
pub mod dna;
pub mod histograms;
pub mod quant;
pub mod registry;
pub mod smooth;
pub mod text;

pub use registry::PaperDataset;
