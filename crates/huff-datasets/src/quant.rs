//! Quantization-code generator — the Nyx-Quant stand-in.
//!
//! SZ-style error-bounded lossy compressors predict each value (Lorenzo /
//! spline predictors) and quantize the residual; on smooth fields like
//! Nyx's `baryon_density` the residuals follow a two-sided geometric
//! distribution sharply peaked at zero, producing quantization codes
//! centred on the middle bin. Table V lists the result for Nyx-Quant:
//! 1024 symbols, average codeword bitwidth 1.0272.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` quantization codes over `num_bins` bins (centre bin =
/// `num_bins/2`) with two-sided geometric deviation of parameter `p`
/// (larger `p` → sharper peak → lower entropy).
pub fn two_sided_geometric(n: usize, num_bins: usize, p: f64, seed: u64) -> Vec<u16> {
    assert!((4..=65536).contains(&num_bins));
    assert!(p > 0.0 && p < 1.0);
    let centre = (num_bins / 2) as i64;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Geometric magnitude: number of failures before success.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let mag = (u.ln() / (1.0 - p).ln()).floor() as i64;
            let sign = if rng.gen::<bool>() { 1 } else { -1 };
            let bin = (centre + sign * mag).clamp(0, num_bins as i64 - 1);
            bin as u16
        })
        .collect()
}

/// The Nyx-Quant preset: 1024 bins with the peak probability chosen so the
/// Huffman average bitwidth lands near the paper's 1.0272 bits. A dominant
/// centre bin of probability `q` gives average ≈ `q + (codes for the
/// tail)`; `p = 0.975` empirically yields β ≈ 1.03.
pub fn nyx_quant(n: usize, seed: u64) -> Vec<u16> {
    two_sided_geometric(n, 1024, 0.975, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_bits(data: &[u16], bins: usize) -> f64 {
        let mut freqs = vec![0u64; bins];
        for &s in data {
            freqs[s as usize] += 1;
        }
        let lens = huff_core::tree::codeword_lengths(&freqs).unwrap();
        huff_core::entropy::average_bitwidth(&freqs, &lens)
    }

    #[test]
    fn codes_center_on_middle_bin() {
        let data = nyx_quant(100_000, 1);
        let centre = data.iter().filter(|&&s| s == 512).count();
        assert!(centre as f64 / data.len() as f64 > 0.8);
        assert!(data.iter().all(|&s| (s as usize) < 1024));
    }

    #[test]
    fn nyx_average_bitwidth_near_paper() {
        // Table V: 1.0272 bits. Accept ±0.15.
        let data = nyx_quant(400_000, 2);
        let avg = avg_bits(&data, 1024);
        assert!((avg - 1.0272).abs() < 0.15, "avg {avg}");
    }

    #[test]
    fn sharper_peak_lower_entropy() {
        let loose = two_sided_geometric(100_000, 256, 0.5, 3);
        let sharp = two_sided_geometric(100_000, 256, 0.95, 3);
        assert!(avg_bits(&sharp, 256) < avg_bits(&loose, 256));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(nyx_quant(1000, 9), nyx_quant(1000, 9));
        assert_ne!(nyx_quant(1000, 9), nyx_quant(1000, 10));
    }

    #[test]
    fn clamped_to_bin_range() {
        // Tiny bin count forces clamping.
        let data = two_sided_geometric(10_000, 4, 0.2, 4);
        assert!(data.iter().all(|&s| s < 4));
    }
}
