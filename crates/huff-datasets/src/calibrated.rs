//! Calibrated sources: hit a target average codeword bitwidth exactly.
//!
//! Every table in the paper depends on the input only through its
//! histogram — most importantly the frequency-weighted **average codeword
//! bitwidth** β (Table V lists it per dataset). This module synthesizes a
//! geometric-family histogram whose *Huffman* average bitwidth matches a
//! target β by binary-searching the decay ratio against an internal
//! two-queue Huffman length computation, then samples i.i.d. from it.

/// A calibrated distribution over `0..n` symbols.
#[derive(Debug, Clone)]
pub struct CalibratedSource {
    /// Relative frequencies (scaled to ~2^32 total).
    pub freqs: Vec<u64>,
    /// The Huffman average bitwidth this histogram achieves.
    pub achieved_bits: f64,
    /// CDF in 2^-40 units for sampling.
    cdf_q40: Vec<u64>,
}

/// Huffman codeword lengths via the classic two-queue O(n log n) method —
/// internal copy so this crate stays independent of huff-core (which
/// dev-depends on us).
fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut pairs: Vec<(u64, usize)> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, &f)| (f, s)).collect();
    pairs.sort_unstable();
    let n = pairs.len();
    let mut lengths = vec![0u32; freqs.len()];
    if n == 0 {
        return lengths;
    }
    if n == 1 {
        lengths[pairs[0].1] = 1;
        return lengths;
    }
    let total_nodes = 2 * n - 1;
    let mut parent = vec![u32::MAX; total_nodes];
    let mut inode_freq = vec![0u64; n - 1];
    let (mut leaf, mut ihead) = (0usize, 0usize);
    for k in 0..n - 1 {
        let mut pick = |itail: usize| -> (usize, u64) {
            let leaf_ok = leaf < n;
            let inode_ok = ihead < itail;
            if leaf_ok && (!inode_ok || pairs[leaf].0 <= inode_freq[ihead]) {
                let id = leaf;
                leaf += 1;
                (id, pairs[id].0)
            } else {
                let id = ihead;
                ihead += 1;
                (n + id, inode_freq[id])
            }
        };
        let (a, fa) = pick(k);
        let (b, fb) = pick(k);
        parent[a] = (n + k) as u32;
        parent[b] = (n + k) as u32;
        inode_freq[k] = fa + fb;
    }
    let mut depth = vec![0u32; total_nodes];
    for id in (0..total_nodes - 1).rev() {
        depth[id] = depth[parent[id] as usize] + 1;
    }
    for (i, &(_, sym)) in pairs.iter().enumerate() {
        lengths[sym] = depth[i].max(1);
    }
    lengths
}

fn avg_bits(freqs: &[u64]) -> f64 {
    let lens = huffman_lengths(freqs);
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = freqs.iter().zip(&lens).map(|(&f, &l)| f * u64::from(l)).sum();
    weighted as f64 / total as f64
}

/// Geometric histogram over `n` symbols with ratio `q`, scaled so the
/// hottest bin is ~4e9. The geometric family's exponentially decaying tail
/// mirrors real corpora's codeword-length distributions: unlike a Zipf
/// tail it produces realistic maximum code lengths and reproduces the
/// paper's sub-percent breaking rates (Table V) at the paper's reduction
/// factors.
fn geometric_histogram(n: usize, q: f64) -> Vec<u64> {
    let mut w = 1.0f64;
    (0..n)
        .map(|_| {
            let v = (w * 4.0e9).max(1.0) as u64;
            w *= q;
            v
        })
        .collect()
}

/// Build a source over `n` symbols whose Huffman average bitwidth is as
/// close as possible to `target_bits` (feasible range roughly
/// `(1, log2 n]`).
///
/// The distribution is geometric over an *active subset* of
/// `~2^(target+1.3)` symbols. Restricting the support and using an
/// exponentially decaying tail keeps the maximum codeword length
/// realistic: real corpora concentrate their mass on a modest alphabet,
/// and a heavier tail would produce 25+-bit codewords and
/// order-of-magnitude-too-high breaking rates in the merge encoder (the
/// paper's Table V measures 0.0002-0.15 % breaking).
pub fn source(n: usize, target_bits: f64) -> CalibratedSource {
    assert!(n >= 2);
    let active = if target_bits + 1.3 < (n as f64).log2() {
        (1usize << ((target_bits + 1.3).ceil() as u32)).clamp(4, n)
    } else {
        n
    };

    // Binary search the ratio: larger q → flatter → larger β.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if avg_bits(&geometric_histogram(active, mid)) > target_bits {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let active_freqs = geometric_histogram(active, 0.5 * (lo + hi));
    let achieved_bits = avg_bits(&active_freqs);

    // Scatter the active ranks across the full symbol space (odd-multiplier
    // bijection when n is a power of two; identity otherwise).
    let mut freqs = vec![0u64; n];
    for (rank, &f) in active_freqs.iter().enumerate() {
        freqs[scramble(rank, n)] = f;
    }

    let total: u64 = active_freqs.iter().sum();
    let mut acc = 0u128;
    let cdf_q40 = active_freqs
        .iter()
        .map(|&f| {
            acc += u128::from(f);
            ((acc << 40) / u128::from(total)) as u64
        })
        .collect();
    CalibratedSource { freqs, achieved_bits, cdf_q40 }
}

/// Rank → symbol mapping: a bijection over `0..n`.
#[inline]
fn scramble(rank: usize, n: usize) -> usize {
    if n.is_power_of_two() {
        (rank.wrapping_mul(2654435761)) % n
    } else {
        rank
    }
}

impl CalibratedSource {
    /// Sample `count` i.i.d. symbols (splitmix64-driven, deterministic).
    /// Symbol identities are scrambled by a fixed odd multiplier so hot
    /// symbols are not clustered at index 0.
    pub fn sample(&self, count: usize, seed: u64) -> Vec<u16> {
        let n = self.freqs.len();
        let active = self.cdf_q40.len();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        (0..count)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                let u = z & ((1u64 << 40) - 1);
                let rank = self.cdf_q40.partition_point(|&c| c <= u).min(active - 1);
                scramble(rank, n) as u16
            })
            .collect()
    }

    /// The symbol space size.
    pub fn num_symbols(&self) -> usize {
        self.freqs.len()
    }
}

/// One-call helper: `count` symbols over `n` bins at average bitwidth
/// `target_bits`.
pub fn sample(n: usize, target_bits: f64, count: usize, seed: u64) -> Vec<u16> {
    source(n, target_bits).sample(count, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_paper_targets() {
        for (n, t) in [
            (256usize, 5.1639f64),
            (256, 5.2124),
            (256, 4.0165),
            (256, 2.7307),
            (256, 4.1428),
            (1024, 1.0272),
        ] {
            let src = source(n, t);
            assert!(
                (src.achieved_bits - t).abs() < 0.05,
                "n={n} target={t} achieved={}",
                src.achieved_bits
            );
        }
    }

    #[test]
    fn internal_huffman_matches_huff_core() {
        let freqs: Vec<u64> = (0..500u64).map(|i| (i * 48271) % 9973 + 1).collect();
        let ours = huffman_lengths(&freqs);
        let reference = huff_core::tree::codeword_lengths(&freqs).unwrap();
        let w =
            |lens: &[u32]| -> u64 { freqs.iter().zip(lens).map(|(&f, &l)| f * u64::from(l)).sum() };
        assert_eq!(w(&ours), w(&reference));
    }

    #[test]
    fn sampled_data_reproduces_target_bits() {
        let src = source(256, 4.0165);
        let data = src.sample(400_000, 5);
        let mut freqs = vec![0u64; 256];
        for &s in &data {
            freqs[s as usize] += 1;
        }
        let measured = avg_bits(&freqs);
        assert!((measured - 4.0165).abs() < 0.15, "measured {measured}");
    }

    #[test]
    fn sampling_deterministic_and_in_range() {
        let src = source(64, 3.0);
        let a = src.sample(1000, 7);
        assert_eq!(a, src.sample(1000, 7));
        assert_ne!(a, src.sample(1000, 8));
        assert!(a.iter().all(|&s| s < 64));
    }

    #[test]
    fn extreme_targets_clamp_gracefully() {
        // Unreachable targets saturate at the family's ends.
        let hi = source(256, 20.0);
        assert!(hi.achieved_bits <= 8.0 + 1e-9);
        let lo = source(256, 0.5);
        assert!(lo.achieved_bits >= 1.0);
    }

    #[test]
    fn empty_and_single_huffman_lengths() {
        assert_eq!(huffman_lengths(&[0, 0]), vec![0, 0]);
        assert_eq!(huffman_lengths(&[0, 5]), vec![0, 1]);
    }
}
