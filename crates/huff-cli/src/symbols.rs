//! Byte-stream ↔ symbol-stream conversion for the CLI.

/// How raw file bytes map to coding symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolWidth {
    /// One byte per symbol (generic Huffman, ≤256 symbols).
    U8,
    /// Two little-endian bytes per symbol (quantization codes, k-mer ids).
    U16Le,
}

impl SymbolWidth {
    /// Native width in bytes.
    pub fn bytes(&self) -> u8 {
        match self {
            SymbolWidth::U8 => 1,
            SymbolWidth::U16Le => 2,
        }
    }

    /// Reconstruct from an archive's header byte.
    pub fn from_bytes(b: u8) -> Result<Self, String> {
        match b {
            1 => Ok(SymbolWidth::U8),
            2 | 4 => Ok(SymbolWidth::U16Le),
            other => Err(format!("unsupported symbol width {other}")),
        }
    }

    /// Decode raw bytes into symbols; returns `(symbols, default_bins)`.
    pub fn decode(&self, raw: &[u8]) -> Result<(Vec<u16>, usize), String> {
        match self {
            SymbolWidth::U8 => Ok((raw.iter().map(|&b| u16::from(b)).collect(), 256)),
            SymbolWidth::U16Le => {
                if !raw.len().is_multiple_of(2) {
                    return Err("u16le input must have even length".into());
                }
                let syms: Vec<u16> =
                    raw.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
                let max = syms.iter().copied().max().unwrap_or(0) as usize;
                Ok((syms, (max + 1).next_power_of_two().max(4)))
            }
        }
    }

    /// Encode symbols back to raw bytes.
    pub fn encode(&self, syms: &[u16]) -> Vec<u8> {
        match self {
            SymbolWidth::U8 => syms.iter().map(|&s| s as u8).collect(),
            SymbolWidth::U16Le => syms.iter().flat_map(|s| s.to_le_bytes()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_roundtrip() {
        let raw = vec![0u8, 1, 255, 7];
        let (syms, bins) = SymbolWidth::U8.decode(&raw).unwrap();
        assert_eq!(bins, 256);
        assert_eq!(SymbolWidth::U8.encode(&syms), raw);
    }

    #[test]
    fn u16le_roundtrip() {
        let raw = vec![0x34, 0x12, 0xFF, 0x03];
        let (syms, bins) = SymbolWidth::U16Le.decode(&raw).unwrap();
        assert_eq!(syms, vec![0x1234, 0x03FF]);
        assert_eq!(bins, 8192);
        assert_eq!(SymbolWidth::U16Le.encode(&syms), raw);
    }

    #[test]
    fn odd_u16_rejected() {
        assert!(SymbolWidth::U16Le.decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn header_byte_mapping() {
        assert_eq!(SymbolWidth::from_bytes(1).unwrap(), SymbolWidth::U8);
        assert_eq!(SymbolWidth::from_bytes(2).unwrap(), SymbolWidth::U16Le);
        assert!(SymbolWidth::from_bytes(9).is_err());
    }
}
