//! `rsh slo` — evaluate the serving engine's latency objectives over a
//! deterministic seeded load sweep.
//!
//! The command drives the in-process engine ([`huff_core::serve`]) with a
//! mixed compress / decompress / range-decode workload — no sockets, all
//! time virtual — then evaluates the default latency objectives
//! ([`huff_core::slo::default_objectives`]) against the completion trace
//! and prints the error-budget table (or the `rsh-slo-v1` JSON report
//! with `--json`). `--chaos` replays the seeded fault storm from
//! `huff_core::serve`, so deadline misses and device loss burn budget in
//! a reproducible way: the same seed prints byte-identical reports.
//! Exits 0 when every objective is met and 1 when any objective is
//! burning its error budget — in `--json` mode too, so CI gates can key
//! on the exit code without parsing the report.
//!
//! `--spans PATH` exports every request's span tree as `rsh-span-v1`
//! JSONL and `--chrome PATH` the per-request Chrome/Perfetto lanes (see
//! FORMAT.md §11) — the p999 exemplar trace id in the latency block
//! resolves to a span tree in those files.

use huff_core::batch::compress_batched;
use huff_core::serve::{ChaosConfig, Engine, EngineConfig, Request};
use huff_core::slo;

use crate::{write_file, CliError, CmdResult, USAGE};

/// Parsed `rsh slo` flags.
struct SloFlags {
    requests: usize,
    seed: u64,
    chaos: bool,
    gap_us: f64,
    deadline_ms: Option<f64>,
    workers: usize,
    queue: usize,
    shard_symbols: usize,
    json: bool,
    spans: Option<String>,
    chrome: Option<String>,
}

impl SloFlags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut f = SloFlags {
            requests: 24,
            seed: 42,
            chaos: false,
            gap_us: 50.0,
            deadline_ms: None,
            workers: 2,
            queue: 8,
            shard_symbols: 4096,
            json: false,
            spans: None,
            chrome: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |flag: &str| {
                it.next().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--requests" => f.requests = parse_num(val("--requests")?, "--requests")?,
                "--seed" => f.seed = parse_num(val("--seed")?, "--seed")?,
                "--chaos" => f.chaos = true,
                "--gap-us" => f.gap_us = parse_num(val("--gap-us")?, "--gap-us")?,
                "--deadline-ms" => {
                    let v: f64 = parse_num(val("--deadline-ms")?, "--deadline-ms")?;
                    f.deadline_ms = Some(v);
                }
                "--workers" => f.workers = parse_num(val("--workers")?, "--workers")?,
                "--queue" => f.queue = parse_num(val("--queue")?, "--queue")?,
                "--shard-symbols" => {
                    f.shard_symbols = parse_num(val("--shard-symbols")?, "--shard-symbols")?;
                }
                "--json" => f.json = true,
                "--spans" => f.spans = Some(val("--spans")?.clone()),
                "--chrome" => f.chrome = Some(val("--chrome")?.clone()),
                other => {
                    return Err(CliError::Usage(format!("unknown slo flag {other:?}\n{USAGE}")))
                }
            }
        }
        if f.requests == 0 || f.workers == 0 || f.queue == 0 || f.shard_symbols == 0 {
            return Err(CliError::Usage(
                "slo needs nonzero --requests, --workers, --queue and --shard-symbols".into(),
            ));
        }
        Ok(f)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::Usage(format!("{flag}: cannot parse {s:?}")))
}

/// Deterministic compressible symbols (64-value alphabet) from a seed —
/// splitmix-style so the same seed replays byte-identically.
fn payload(n: usize, seed: u64) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
            ((x.wrapping_mul(0xBF58476D1CE4E5B9) >> 33) % 64) as u16
        })
        .collect()
}

/// Run the seeded sweep: `requests` mixed requests against one engine.
fn run_sweep(f: &SloFlags) -> Result<Engine, CliError> {
    let mut cfg = EngineConfig::new(256);
    cfg.workers = f.workers;
    cfg.queue_capacity = f.queue;
    cfg.batch.shard_symbols = f.shard_symbols;
    cfg.batch.symbol_bytes = 1;
    let syms = payload(24_000, f.seed);
    let (frame, _) =
        compress_batched(&syms, &cfg.batch).map_err(|e| CliError::Corrupt(e.to_string()))?;
    let mut engine = if f.chaos {
        Engine::with_chaos(cfg, ChaosConfig::storm(f.seed))
    } else {
        Engine::new(cfg)
    };
    let gap_s = f.gap_us * 1e-6;
    let total = syms.len() as u64;
    for i in 0..f.requests {
        let t = i as f64 * gap_s;
        let mut req = match i % 3 {
            0 => Request::compress(format!("slo-c{i}"), t, syms.clone()),
            1 => Request::decompress(format!("slo-d{i}"), t, frame.clone()),
            _ => {
                // A chunk-unaligned window sliding with the request index.
                let lo = (i as u64 * 997) % (total / 2);
                Request::decompress_range(format!("slo-r{i}"), t, frame.clone(), lo..lo + 1024)
            }
        };
        if let Some(ms) = f.deadline_ms {
            req = req.with_deadline(ms * 1e-3);
        }
        engine.submit(req).map_err(|e| CliError::Corrupt(e.to_string()))?;
    }
    Ok(engine)
}

/// The per-class latency block printed above the SLO table: count, sum,
/// p50/p95/p99/p999 in virtual milliseconds, and the p999 exemplar trace
/// id (the request whose span tree explains the tail).
fn render_latency(engine: &Engine) -> String {
    let book = engine.latency();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>6} {:>10} {:>10} {:>10} {:>10}  {}\n",
        "class", "count", "p50 ms", "p95 ms", "p99 ms", "p999 ms", "p999 exemplar"
    ));
    for class in book.classes() {
        let h = book.class(class);
        out.push_str(&format!(
            "{:<18} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}  {}\n",
            class,
            h.count(),
            h.quantile(0.50) * 1e3,
            h.quantile(0.95) * 1e3,
            h.quantile(0.99) * 1e3,
            h.quantile(0.999) * 1e3,
            h.exemplar(0.999).unwrap_or("-"),
        ));
    }
    out
}

/// Entry point for `rsh slo`.
pub(crate) fn cmd_slo(args: &[String]) -> CmdResult {
    let f = SloFlags::parse(args)?;
    let engine = run_sweep(&f)?;
    let objectives = slo::default_objectives();
    let report = engine.slo_report(&objectives);

    if let Some(path) = &f.spans {
        write_file(path, engine.span_jsonl().as_bytes())?;
        eprintln!("rsh: span trees written to {path} (rsh-span-v1 JSONL)");
    }
    if let Some(path) = &f.chrome {
        write_file(path, engine.chrome_spans().as_bytes())?;
        eprintln!("rsh: chrome spans written to {path} (one lane per request)");
    }

    if f.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", render_latency(&engine));
        println!();
        print!("{}", report.render_table());
    }
    // The documented contract: exit 1 when any objective is burning its
    // budget, so CI gates can key on the exit code in both output modes
    // (the warning goes to stderr, keeping --json stdout parseable).
    if report.all_met() {
        Ok(0)
    } else {
        eprintln!("rsh: slo: at least one objective is burning its error budget");
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_compressible() {
        assert_eq!(payload(1000, 7), payload(1000, 7));
        assert_ne!(payload(1000, 7), payload(1000, 8));
        assert!(payload(1000, 7).iter().all(|&s| s < 64));
    }

    #[test]
    fn flags_parse_and_reject_garbage() {
        let f = SloFlags::parse(&[]).unwrap();
        assert_eq!(f.requests, 24);
        assert!(!f.chaos);
        let args: Vec<String> = ["--requests", "8", "--chaos", "--seed", "9", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = SloFlags::parse(&args).unwrap();
        assert_eq!((f.requests, f.seed, f.chaos, f.json), (8, 9, true, true));
        assert!(SloFlags::parse(&["--bogus".to_string()]).is_err());
        assert!(SloFlags::parse(&["--requests".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn sweep_report_is_deterministic_and_covers_all_classes() {
        let mut args: Vec<String> =
            ["--requests", "9", "--seed", "5", "--chaos"].iter().map(|s| s.to_string()).collect();
        let f = SloFlags::parse(&args).unwrap();
        let a = run_sweep(&f).unwrap();
        let b = run_sweep(&f).unwrap();
        assert_eq!(a.span_jsonl(), b.span_jsonl(), "same seed must replay byte-identically");
        let ra = a.slo_report(&slo::default_objectives());
        let rb = b.slo_report(&slo::default_objectives());
        assert_eq!(ra.to_json().to_string(), rb.to_json().to_string());
        let classes = a.latency().classes();
        for want in ["compress", "decompress", "decompress_range"] {
            assert!(classes.contains(&want), "missing class {want}: {classes:?}");
        }
        // The rendered latency block names every class too.
        let block = render_latency(&a);
        assert!(block.contains("decompress_range"));

        // A different seed changes the sweep (payloads and faults).
        args[3] = "6".into();
        let g = SloFlags::parse(&args).unwrap();
        let c = run_sweep(&g).unwrap();
        assert_ne!(a.span_jsonl(), c.span_jsonl());
    }

    #[test]
    fn burning_budget_exits_one_in_both_output_modes() {
        // A sub-service deadline forces every request to miss, so every
        // objective burns regardless of the chaos schedule.
        let mut args: Vec<String> = ["--chaos", "--requests", "9", "--deadline-ms", "0.0001"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = SloFlags::parse(&args).unwrap();
        let report = run_sweep(&f).unwrap().slo_report(&slo::default_objectives());
        assert!(!report.all_met(), "sub-service deadline must burn the budget");
        assert_eq!(cmd_slo(&args).unwrap(), 1, "table mode must exit 1 while burning");
        args.push("--json".into());
        assert_eq!(cmd_slo(&args).unwrap(), 1, "--json mode must exit 1 while burning");
    }

    #[test]
    fn clean_sweep_exits_zero() {
        // The default fault-free sweep meets every stock objective
        // (the README walkthrough output).
        let f = SloFlags::parse(&[]).unwrap();
        let report = run_sweep(&f).unwrap().slo_report(&slo::default_objectives());
        assert!(report.all_met(), "fault-free default sweep must hold every objective");
        assert_eq!(cmd_slo(&[]).unwrap(), 0);
    }

    #[test]
    fn cmd_slo_writes_span_and_chrome_exports() {
        let dir = std::env::temp_dir().join("rsh-slo-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let spans = dir.join("slo.spans.jsonl").to_string_lossy().into_owned();
        let chrome = dir.join("slo.chrome.json").to_string_lossy().into_owned();
        let args: Vec<String> = vec![
            "--requests".into(),
            "6".into(),
            "--chaos".into(),
            "--spans".into(),
            spans.clone(),
            "--chrome".into(),
            chrome.clone(),
        ];
        // The exit code is the SLO verdict, not the export status: it
        // must match whether this seeded sweep meets every objective.
        let f = SloFlags::parse(&args).unwrap();
        let met = run_sweep(&f).unwrap().slo_report(&slo::default_objectives()).all_met();
        assert_eq!(cmd_slo(&args).unwrap(), u8::from(!met));
        let s = std::fs::read_to_string(&spans).unwrap();
        assert!(s.lines().all(|l| l.starts_with("{\"schema\":\"rsh-span-v1\"")));
        assert!(s.contains("\"kind\":\"request\""));
        let c = std::fs::read_to_string(&chrome).unwrap();
        assert!(c.starts_with("{\"traceEvents\":["));
    }
}
