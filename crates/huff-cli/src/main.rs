//! `rsh` — command-line reduce-shuffle Huffman compressor.
//!
//! ```text
//! rsh compress   <input> <output> [--symbols u8|u16le] [--bins N]
//!                                 [--magnitude M] [--reduction R]
//! rsh decompress <input> <output>
//! rsh inspect    <archive>
//! rsh bench      <input> [--symbols u8|u16le] [--bins N]
//! ```

use huff_core::archive::{self, CompressOptions};
use huff_core::encode::BreakingStrategy;
use std::process::ExitCode;

mod symbols;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rsh: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  rsh compress   <input> <output> [--symbols u8|u16le] [--bins N] [--magnitude M] [--reduction R] [--widen]
  rsh decompress <input> <output>
  rsh inspect    <archive>
  rsh bench      <input> [--symbols u8|u16le] [--bins N]
";

#[derive(Debug)]
struct Flags {
    symbols: symbols::SymbolWidth,
    bins: Option<usize>,
    magnitude: u32,
    reduction: Option<u32>,
    widen: bool,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        symbols: symbols::SymbolWidth::U8,
        bins: None,
        magnitude: 10,
        reduction: None,
        widen: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--symbols" => {
                f.symbols = match it.next().map(String::as_str) {
                    Some("u8") => symbols::SymbolWidth::U8,
                    Some("u16le") => symbols::SymbolWidth::U16Le,
                    other => return Err(format!("--symbols needs u8|u16le, got {other:?}")),
                }
            }
            "--bins" => {
                f.bins = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--bins needs a number")?,
                )
            }
            "--magnitude" => {
                f.magnitude =
                    it.next().and_then(|v| v.parse().ok()).ok_or("--magnitude needs a number")?
            }
            "--reduction" => {
                f.reduction =
                    Some(it.next().and_then(|v| v.parse().ok()).ok_or("--reduction needs a number")?)
            }
            "--widen" => f.widen = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("compress needs <input> <output>".into());
    };
    let raw = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let (syms, default_bins) = f.symbols.decode(&raw)?;

    let mut opts = CompressOptions::new(f.bins.unwrap_or(default_bins));
    opts.magnitude = f.magnitude;
    opts.reduction = f.reduction;
    opts.symbol_bytes = f.symbols.bytes();
    opts.strategy =
        if f.widen { BreakingStrategy::WidenWord } else { BreakingStrategy::SparseSidecar };

    let t = std::time::Instant::now();
    let packed = archive::compress(&syms, &opts).map_err(|e| e.to_string())?;
    let dt = t.elapsed().as_secs_f64();
    std::fs::write(output, &packed).map_err(|e| format!("{output}: {e}"))?;
    eprintln!(
        "{} -> {} bytes ({:.3}x) in {:.1} ms ({:.1} MB/s)",
        raw.len(),
        packed.len(),
        raw.len() as f64 / packed.len() as f64,
        dt * 1e3,
        raw.len() as f64 / dt / 1e6,
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("decompress needs <input> <output>".into());
    };
    let packed = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let (_, _, symbol_bytes) = archive::deserialize(&packed).map_err(|e| e.to_string())?;
    let syms = archive::decompress(&packed).map_err(|e| e.to_string())?;
    let raw = symbols::SymbolWidth::from_bytes(symbol_bytes)?.encode(&syms);
    std::fs::write(output, &raw).map_err(|e| format!("{output}: {e}"))?;
    eprintln!("{} -> {} bytes", packed.len(), raw.len());
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err("inspect needs <archive>".into());
    };
    let packed = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let (stream, book, symbol_bytes) =
        archive::deserialize(&packed).map_err(|e| e.to_string())?;
    println!("archive          {} bytes", packed.len());
    println!("symbols          {} ({}-byte native width)", stream.num_symbols, symbol_bytes);
    println!("codebook         {} / {} coded symbols, H = {}", book.coded_symbols(), book.num_symbols(), book.max_len());
    println!("chunks           {} x 2^{} symbols, reduction 2^{}", stream.num_chunks(), stream.config.magnitude, stream.config.reduction);
    println!("payload          {} bits ({} bytes)", stream.total_bits, stream.total_bits.div_ceil(8));
    println!("breaking units   {} ({:.6}% of symbols)", stream.outliers.num_units(), stream.breaking_fraction() * 100.0);
    println!("ratio            {:.3}x", stream.compression_ratio(u32::from(symbol_bytes) * 8));
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err("bench needs <input>".into());
    };
    let raw = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let (syms, default_bins) = f.symbols.decode(&raw)?;
    let bins = f.bins.unwrap_or(default_bins);

    let freqs = huff_core::histogram::parallel_cpu::histogram(&syms, bins, 8);
    let book = huff_core::build_codebook(&freqs, 16).map_err(|e| e.to_string())?;
    let cfg = huff_core::MergeConfig::auto::<u32>(10, &freqs, &book);
    println!("{} bytes, {} bins, avg {:.4} bits, auto r = {}", raw.len(), bins, book.average_bitwidth(&freqs), cfg.reduction);

    let mb = raw.len() as f64 / 1e6;
    let run = |name: &str, f: &mut dyn FnMut() -> Result<(), String>| -> Result<(), String> {
        let t = std::time::Instant::now();
        f()?;
        println!("{name:<22} {:8.1} MB/s (host wall clock)", mb / t.elapsed().as_secs_f64());
        Ok(())
    };
    run("serial", &mut || {
        huff_core::encode::serial::encode(&syms, &book).map(|_| ()).map_err(|e| e.to_string())
    })?;
    run("multithread", &mut || {
        huff_core::encode::multithread::encode(&syms, &book, 8, 1 << 16)
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    run("reduce-shuffle", &mut || {
        huff_core::encode::reduce_shuffle::encode(
            &syms,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    })?;

    // Modeled device figure.
    let gpu = gpu_sim::Gpu::v100();
    let (_, times) = huff_core::encode::gpu::encode_on_gpu(
        &gpu,
        &syms,
        u64::from(f.symbols.bytes()),
        &book,
        cfg,
        BreakingStrategy::SparseSidecar,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{:<22} {:8.1} GB/s (modeled V100)",
        "reduce-shuffle (V100)",
        raw.len() as f64 / times.total / 1e9
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("rsh-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn parse_flags_defaults_and_overrides() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(f.magnitude, 10);
        assert!(f.reduction.is_none());
        let args: Vec<String> = ["--symbols", "u16le", "--bins", "512", "--reduction", "2", "in", "out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.symbols, symbols::SymbolWidth::U16Le);
        assert_eq!(f.bins, Some(512));
        assert_eq!(f.reduction, Some(2));
        assert_eq!(f.positional, vec!["in", "out"]);
    }

    #[test]
    fn parse_flags_rejects_unknown() {
        assert!(parse_flags(&["--bogus".to_string()]).is_err());
        assert!(parse_flags(&["--bins".to_string()]).is_err());
    }

    #[test]
    fn compress_decompress_file_roundtrip() {
        let input = tmp("in.bin");
        let packed = tmp("out.rsh");
        let restored = tmp("restored.bin");
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        cmd_compress(&[input.clone(), packed.clone()].map(String::from)).unwrap();
        cmd_inspect(&[packed.clone()]).unwrap();
        cmd_decompress(&[packed, restored.clone()]).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
    }

    #[test]
    fn u16_mode_roundtrip() {
        let input = tmp("in16.bin");
        let packed = tmp("out16.rsh");
        let restored = tmp("restored16.bin");
        let payload: Vec<u8> =
            (0..30_000u32).flat_map(|i| ((i % 900) as u16).to_le_bytes()).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> =
            vec![input, packed.clone(), "--symbols".into(), "u16le".into(), "--reduction".into(), "2".into()];
        cmd_compress(&args).unwrap();
        cmd_decompress(&[packed, restored.clone()]).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let r = cmd_compress(&["/nonexistent/x".to_string(), tmp("y")]);
        assert!(r.is_err());
        let r = cmd_inspect(&["/nonexistent/x".to_string()]);
        assert!(r.is_err());
    }
}
