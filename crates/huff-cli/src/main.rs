//! `rsh` — command-line reduce-shuffle Huffman compressor.
//!
//! ```text
//! rsh compress   <input> <output> [--symbols u8|u16le] [--bins N]
//!                                 [--magnitude M] [--reduction R]
//!                                 [--autotune] [--tune-cache PATH]
//!                                 [--trace out.json] [--device NAME]
//! rsh decompress <input> <output> [--best-effort] [--sentinel N]
//!                                 [--decoder serial|chunked|lut]
//!                                 [--trace out.json] [--device NAME]
//! rsh cat        <archive> [output] --range A..B [--decoder serial|chunked|lut]
//!                                 [--best-effort] [--sentinel N]
//! rsh verify     <archive>
//! rsh inspect    <archive>
//! rsh profile    <file> [--roofline] [--roofline-json out.json] [--threshold F]
//!                [--compare]
//!                       [--trace out.json] [--chrome out.json] [--device NAME]
//! rsh stats      <input> [output] [--json]
//! ```
//!
//! `profile` runs the full modeled pipeline over `<file>` — a roundtrip
//! (compress + decompress) for raw inputs, decompression for `RSH1`/`RSH2`
//! archives — and prints a per-stage table. `--trace` writes the
//! `rsh-trace-v1` JSON profile (see FORMAT.md) and `--chrome` a Chrome
//! `trace_event` timeline loadable in `chrome://tracing` / Perfetto. The
//! same `--trace` flag on `compress`/`decompress` routes those commands
//! through the modeled device pipeline and records the profile alongside
//! their normal output. `--device` selects the modeled part
//! (`v100` default, `rtx5000`). `--roofline` classifies every kernel
//! against the device roofline (see DESIGN.md § "Roofline & counters");
//! `stats` dumps the process-wide metrics registry after one real
//! operation (the scrape surface a service would expose).
//!
//! Exit codes are distinct and scriptable:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | usage error |
//! | 2    | I/O error |
//! | 3    | corrupt archive / failed verification / codec error |
//! | 4    | best-effort decompression recovered with losses |
//!
//! `verify` and a lossy `decompress --best-effort` print a stable,
//! machine-readable one-line JSON recovery report on stdout.

use huff_core::archive::{self, CompressOptions};
use huff_core::batch::BatchOptions;
use huff_core::encode::BreakingStrategy;
use huff_core::frame;
use huff_core::integrity::{DecompressOptions, RecoveryReport};
use huff_core::metrics;
use std::process::ExitCode;

mod serve;
mod slo;
mod symbols;

/// A CLI failure, carrying which exit code it maps to.
#[derive(Debug)]
enum CliError {
    /// Bad arguments: exit 1.
    Usage(String),
    /// Filesystem failure: exit 2.
    Io(String),
    /// Damaged or invalid archive / codec failure: exit 3.
    Corrupt(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Io(_) => 2,
            CliError::Corrupt(_) => EXIT_CORRUPT,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Corrupt(m) => m,
        }
    }
}

/// Exit code 3: damaged or invalid archive.
const EXIT_CORRUPT: u8 = 3;
/// Exit code 4: best-effort decompression succeeded but lost symbols.
const EXIT_RECOVERED_WITH_LOSSES: u8 = 4;

type CmdResult = Result<u8, CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("cat") => cmd_cat(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => serve::cmd_serve(&args[1..]),
        Some("slo") => slo::cmd_slo(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}\n{USAGE}"))),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("rsh: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
usage:
  rsh compress   <input> <output> [--symbols u8|u16le] [--bins N] [--magnitude M] [--reduction R] [--widen]
                                  [--shards N] [--streams N] [--devices v100,rtx5000] [--buffers N]
                                  [--autotune] [--tune-cache PATH]
                                  [--trace out.json] [--chrome out.json] [--device v100|rtx5000]
  rsh decompress <input> <output> [--best-effort] [--sentinel N] [--decoder serial|chunked|lut]
                                  [--trace out.json] [--device v100|rtx5000]
  rsh cat        <archive> [output] --range A..B [--decoder serial|chunked|lut]
                                  [--best-effort] [--sentinel N]
  rsh verify     <archive>
  rsh inspect    <archive>
  rsh profile    <file> [--roofline] [--roofline-json out.json] [--threshold F]
                 [--compare]
                        [--trace out.json] [--chrome out.json] [--device v100|rtx5000]
  rsh stats      <input> [output] [--json] [compress/decompress flags]
  rsh bench      <input> [--symbols u8|u16le] [--bins N]
  rsh serve      [--addr HOST:PORT] [--workers N] [--queue N] [--shard-symbols N]
                 [--deadline-ms F] [--gap-us F] [--max-requests N] [--chaos SEED]
                 [--autotune] [--tune-cache PATH] [--dashboard]
                 [--spans PATH] [--chrome PATH]
  rsh slo        [--requests N] [--seed S] [--chaos] [--gap-us F] [--deadline-ms F]
                 [--workers N] [--queue N] [--shard-symbols N] [--json]
                 [--spans PATH] [--chrome PATH]

profile runs the modeled device pipeline (roundtrip for raw files, decompression
for RSH archives) and prints per-stage metrics; --trace writes the rsh-trace-v1
JSON profile and --chrome a chrome://tracing / Perfetto timeline. --trace on
compress/decompress routes them through the same modeled pipeline. --roofline
adds the per-kernel roofline classification (memory / compute / latency /
contention bound, efficiency vs the device's achievable bandwidth); kernels that
should ride the roofline but achieve less than --threshold (default 0.5) of it
are flagged. --roofline-json writes the rsh-roofline-v1 report. --compare
profiles the same raw input under the fused and unfused kernel plans and prints
a side-by-side per-kernel roofline table — the kernel-fusion win (one
histogram kernel, no standalone length kernel, coalesced backtrace; see
DESIGN.md § \"Kernel fusion\") in one command. Fusion is encode-side only, so
--compare rejects archive inputs.

stats resets the process-wide metrics registry, runs one real operation
(compress for raw inputs, decompress for archives/frames), and dumps the
registry as Prometheus text exposition (--json for the JSON export) — the
scrape surface a long-running service would expose. bytes_out reconciles with
the archive size, shards_total with the frame shard count.

--shards/--streams/--devices/--buffers switch compress to the batched pipeline:
the input splits into N shards, each shard's histogram->codebook->encode chain
runs on its own stream, overlapping across streams and devices, and the output
is a multi-shard RSHM frame (decompress/verify/inspect accept it transparently;
each shard recovers independently under --best-effort).

--autotune replaces the fixed defaults with the adaptive tuning policy
(DESIGN.md § \"Tuning policy\"): the input's histogram signature is measured,
the candidate sweep (reduction factor, shards, streams, decoder) is scored with
the device cost model, and the winner runs — incompressible inputs (>=95%
ratio) are stored in the tiny RSHR raw container and tiny inputs skip the
device entirely. --tune-cache PATH persists decisions in the rsh-tune-v1 cache
(FORMAT.md §9) keyed by signature + device, so a second run with the same
statistics prints `cache hit` and skips the modeled sweep; corrupt or
foreign-versioned caches fall back to modeling, never fail the run. Cache
hit/miss counters surface in stats as rsh_tune_lookups_total. The same flags on
serve autotune every compress request.

cat decodes only the requested byte range A..B (offsets into the *decoded*
output; either bound may be omitted: --range 1000.. reads to the end,
--range ..1000 from the start). Archives written by this rsh carry a succinct
seek index (FORMAT.md \u{a7}10), so cat touches only the chunks covering the range
— O(1) index probes instead of a full decode; older or index-stripped archives
fall back to a chunk-table prefix scan, bit-identically. Without [output] the
bytes stream to stdout and all diagnostics go to stderr. Exit codes mirror
decompress (4 = best-effort recovered with losses inside the range).

--decoder selects the payload decoder backend (default chunked): serial is the
single-thread baseline, chunked decodes one chunk per block bit-serially, lut
adds multi-bit LUT probes with subchunk gap-array synchronization. All three
are bit-exact; with --trace the modeled kernel times differ (see DESIGN.md).

serve runs the fault-tolerant serving engine behind a minimal HTTP/1.1 listener
(one request per connection; see FORMAT.md §8): POST /compress and
POST /decompress carry raw payload bytes, GET /metrics exposes the Prometheus
registry (same surface as stats), GET /healthz answers liveness. Requests past
the bounded --queue are shed with 429; deadline misses (x-rsh-deadline-ms
header or --deadline-ms) answer 504; unrecoverable payloads answer 500 — all
with a structured rsh-error-v1 JSON body and an x-rsh-trace-id header.
--chaos SEED injects the deterministic fault storm (transients, decoder
glitches, payload corruption, device loss) from huff_core::serve. Virtual
arrival time advances --gap-us per request; --max-requests stops after N
connections (for scripted runs). --dashboard streams one summary line per
completed request on stderr (class, outcome, virtual latency, rolling
admitted-request p50/p99/p999, worst error-budget burn rate) and prints
the SLO table at shutdown; --spans writes every request's span tree as rsh-span-v1 JSONL
and --chrome the per-request Chrome/Perfetto lanes at shutdown (FORMAT.md
\u{a7}11).

slo drives the same engine in-process (no sockets, all time virtual) with
a seeded mixed compress/decompress/range workload, then evaluates the
default latency objectives and prints the per-class latency percentiles
(p50/p95/p99/p999 with the p999 exemplar trace id) and the error-budget
table — burn rate > 1.0 means the objective is burning budget faster
than it can afford. --json emits the rsh-slo-v1 report instead; --chaos
replays the deterministic fault storm so the same seed prints
byte-identical reports; --spans/--chrome export the span trees the
exemplar trace ids resolve into. slo exits 0 when every objective is
met and 1 when any objective is burning its budget (in --json mode too).

exit codes: 0 ok, 1 usage, 2 I/O error, 3 corrupt archive, 4 recovered with losses
";

/// Stable one-line JSON rendering of a recovery report.
fn report_json(r: &RecoveryReport) -> String {
    let chunks: Vec<String> = r.damaged_chunks.iter().map(|c| c.to_string()).collect();
    let ranges: Vec<String> = r.damaged_ranges.iter().map(|(s, e)| format!("[{s},{e}]")).collect();
    format!(
        "{{\"report\":\"rsh-recovery\",\"total_chunks\":{},\"damaged_chunks\":[{}],\"damaged_ranges\":[{}],\"symbols_lost\":{}}}",
        r.total_chunks,
        chunks.join(","),
        ranges.join(","),
        r.symbols_lost,
    )
}

#[derive(Debug)]
struct Flags {
    symbols: symbols::SymbolWidth,
    bins: Option<usize>,
    magnitude: u32,
    reduction: Option<u32>,
    widen: bool,
    best_effort: bool,
    sentinel: Option<u16>,
    decoder: Option<huff_core::DecoderKind>,
    trace: Option<String>,
    chrome: Option<String>,
    roofline: bool,
    roofline_json: Option<String>,
    threshold: Option<f64>,
    compare: bool,
    json: bool,
    device: String,
    shards: Option<usize>,
    streams: Option<usize>,
    devices: Option<String>,
    buffers: Option<usize>,
    autotune: bool,
    tune_cache: Option<String>,
    range: Option<std::ops::Range<u64>>,
    positional: Vec<String>,
}

fn device_spec(name: &str) -> Result<gpu_sim::DeviceSpec, CliError> {
    match name {
        "v100" => Ok(gpu_sim::DeviceSpec::v100()),
        "rtx5000" => Ok(gpu_sim::DeviceSpec::rtx5000()),
        other => Err(CliError::Usage(format!("--device needs v100|rtx5000, got {other:?}"))),
    }
}

impl Flags {
    /// The modeled device selected by `--device` (default V100).
    fn gpu(&self) -> Result<gpu_sim::Gpu, CliError> {
        Ok(gpu_sim::Gpu::new(device_spec(&self.device)?))
    }

    /// Whether any batch flag was given (switches compress to the
    /// sharded multi-stream pipeline).
    fn batched(&self) -> bool {
        self.shards.is_some()
            || self.streams.is_some()
            || self.devices.is_some()
            || self.buffers.is_some()
    }

    /// The device fleet for a batched run: the `--devices` list, or the
    /// single `--device` part.
    fn device_fleet(&self) -> Result<Vec<gpu_sim::DeviceSpec>, CliError> {
        match &self.devices {
            Some(list) => list.split(',').map(|n| device_spec(n.trim())).collect(),
            None => Ok(vec![device_spec(&self.device)?]),
        }
    }

    /// The autotuner selected by `--autotune`, persisting to the
    /// `--tune-cache` path when one is given.
    fn tuner(&self) -> Result<huff_core::Tuner, CliError> {
        let device = device_spec(&self.device)?;
        Ok(match &self.tune_cache {
            Some(path) => huff_core::Tuner::with_cache_path(device, path),
            None => huff_core::Tuner::new(device),
        })
    }

    /// Profiler options assembled from the flags (`--bins`, `--magnitude`,
    /// `--reduction`, `--decoder`, `--threshold`).
    fn profile_options(&self, default_bins: usize) -> metrics::ProfileOptions {
        let mut o = metrics::ProfileOptions::new(self.bins.unwrap_or(default_bins))
            .symbol_bytes(u64::from(self.symbols.bytes()))
            .magnitude(self.magnitude);
        if let Some(r) = self.reduction {
            o = o.reduction(r);
        }
        if let Some(d) = self.decoder {
            o = o.decoder(d);
        }
        if let Some(t) = self.threshold {
            o = o.roofline_threshold(t);
        }
        o
    }

    /// The roofline anomaly threshold in effect (`--threshold` or the
    /// library default).
    fn roofline_threshold(&self) -> f64 {
        self.threshold.unwrap_or(metrics::roofline::DEFAULT_THRESHOLD)
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let usage = |m: &str| CliError::Usage(m.to_string());
    let mut f = Flags {
        symbols: symbols::SymbolWidth::U8,
        bins: None,
        magnitude: 10,
        reduction: None,
        widen: false,
        best_effort: false,
        sentinel: None,
        decoder: None,
        trace: None,
        chrome: None,
        roofline: false,
        roofline_json: None,
        threshold: None,
        compare: false,
        json: false,
        device: "v100".to_string(),
        shards: None,
        streams: None,
        devices: None,
        buffers: None,
        autotune: false,
        tune_cache: None,
        range: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--symbols" => {
                f.symbols = match it.next().map(String::as_str) {
                    Some("u8") => symbols::SymbolWidth::U8,
                    Some("u16le") => symbols::SymbolWidth::U16Le,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--symbols needs u8|u16le, got {other:?}"
                        )))
                    }
                }
            }
            "--bins" => {
                f.bins = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| usage("--bins needs a number"))?,
                )
            }
            "--magnitude" => {
                f.magnitude = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--magnitude needs a number"))?
            }
            "--reduction" => {
                f.reduction = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| usage("--reduction needs a number"))?,
                )
            }
            "--widen" => f.widen = true,
            "--best-effort" => f.best_effort = true,
            "--trace" => {
                f.trace = Some(it.next().ok_or_else(|| usage("--trace needs a path"))?.to_string())
            }
            "--chrome" => {
                f.chrome =
                    Some(it.next().ok_or_else(|| usage("--chrome needs a path"))?.to_string())
            }
            "--roofline" => f.roofline = true,
            "--compare" => f.compare = true,
            "--roofline-json" => {
                f.roofline_json = Some(
                    it.next().ok_or_else(|| usage("--roofline-json needs a path"))?.to_string(),
                )
            }
            "--threshold" => {
                f.threshold = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t: &f64| t > 0.0 && t <= 1.0)
                        .ok_or_else(|| usage("--threshold needs a fraction in (0, 1]"))?,
                )
            }
            "--json" => f.json = true,
            "--device" => {
                f.device = it.next().ok_or_else(|| usage("--device needs a name"))?.to_string()
            }
            "--sentinel" => {
                f.sentinel = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| usage("--sentinel needs a u16"))?,
                )
            }
            "--decoder" => {
                let name = it.next().ok_or_else(|| usage("--decoder needs a name"))?;
                f.decoder = Some(
                    huff_core::DecoderKind::parse(name)
                        .map_err(|e| CliError::Usage(e.to_string()))?,
                )
            }
            "--shards" => {
                f.shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| usage("--shards needs a positive number"))?,
                )
            }
            "--streams" => {
                f.streams = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| usage("--streams needs a positive number"))?,
                )
            }
            "--devices" => {
                f.devices =
                    Some(it.next().ok_or_else(|| usage("--devices needs a list"))?.to_string())
            }
            "--buffers" => {
                f.buffers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| usage("--buffers needs a number"))?,
                )
            }
            "--range" => {
                let v = it.next().ok_or_else(|| usage("--range needs A..B"))?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| usage("--range needs A..B (decoded byte offsets)"))?;
                let lo = if a.is_empty() {
                    0
                } else {
                    a.parse().map_err(|_| usage("--range start must be a byte offset"))?
                };
                let hi = if b.is_empty() {
                    u64::MAX
                } else {
                    b.parse().map_err(|_| usage("--range end must be a byte offset"))?
                };
                f.range = Some(lo..hi);
            }
            "--autotune" => f.autotune = true,
            "--tune-cache" => {
                f.tune_cache =
                    Some(it.next().ok_or_else(|| usage("--tune-cache needs a path"))?.to_string())
            }
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag {other}")))
            }
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn read_file(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| CliError::Io(format!("{path}: {e}")))
}

/// Write the `--trace` / `--chrome` sidecar files for a profile run.
fn write_profile_outputs(f: &Flags, profile: &metrics::PipelineProfile) -> Result<(), CliError> {
    if let Some(path) = &f.trace {
        write_file(path, profile.to_json_string().as_bytes())?;
        eprintln!("rsh: trace written to {path}");
    }
    if let Some(path) = &f.chrome {
        write_file(path, profile.to_chrome_trace().as_bytes())?;
        eprintln!("rsh: chrome trace written to {path} (load in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn cmd_compress(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err(CliError::Usage("compress needs <input> <output>".into()));
    };
    let raw = read_file(input)?;
    let (syms, default_bins) = f.symbols.decode(&raw).map_err(CliError::Corrupt)?;

    if f.autotune {
        if f.batched() || f.reduction.is_some() || f.trace.is_some() || f.chrome.is_some() {
            return Err(CliError::Usage(
                "--autotune picks reduction/shards/streams itself; drop --reduction, the batch \
                 flags, and --trace/--chrome"
                    .into(),
            ));
        }
        let packed = autotune_compress(&f, &syms, default_bins)?;
        write_file(output, &packed)?;
        eprintln!(
            "{} -> {} bytes ({:.3}x)",
            raw.len(),
            packed.len(),
            raw.len() as f64 / packed.len() as f64,
        );
        return Ok(0);
    }

    if f.batched() {
        return cmd_compress_batched(&f, &raw, &syms, default_bins, output);
    }

    if f.trace.is_some() || f.chrome.is_some() {
        // Route through the modeled device pipeline so the profile carries
        // kernel trace events (the sparse-sidecar encoder, as `profile`).
        let gpu = f.gpu()?;
        let (packed, profile) =
            metrics::profile_compress(&gpu, &syms, &f.profile_options(default_bins))
                .map_err(|e| CliError::Corrupt(e.to_string()))?;
        write_file(output, &packed)?;
        write_profile_outputs(&f, &profile)?;
        eprintln!(
            "{} -> {} bytes ({:.3}x) in {:.3} ms modeled on {}",
            raw.len(),
            packed.len(),
            raw.len() as f64 / packed.len() as f64,
            profile.total_seconds() * 1e3,
            profile.device,
        );
        return Ok(0);
    }

    let mut opts = CompressOptions::new(f.bins.unwrap_or(default_bins));
    opts.magnitude = f.magnitude;
    opts.reduction = f.reduction;
    opts.symbol_bytes = f.symbols.bytes();
    opts.strategy =
        if f.widen { BreakingStrategy::WidenWord } else { BreakingStrategy::SparseSidecar };

    let t = std::time::Instant::now();
    let packed = archive::compress(&syms, &opts).map_err(|e| CliError::Corrupt(e.to_string()))?;
    let dt = t.elapsed().as_secs_f64();
    write_file(output, &packed)?;
    eprintln!(
        "{} -> {} bytes ({:.3}x) in {:.1} ms ({:.1} MB/s)",
        raw.len(),
        packed.len(),
        raw.len() as f64 / packed.len() as f64,
        dt * 1e3,
        raw.len() as f64 / dt / 1e6,
    );
    Ok(0)
}

/// `compress --autotune`: dispatch by the tuner's decision (store-raw /
/// CPU-serial / tuned batched GPU; see `huff_core::tune`) and print what
/// was decided and whether it came from the tuning cache.
fn autotune_compress(f: &Flags, syms: &[u16], default_bins: usize) -> Result<Vec<u8>, CliError> {
    let mut tuner = f.tuner()?;
    let bins = f.bins.unwrap_or(default_bins);
    let (packed, decision, hit) = tuner
        .compress(syms, bins, f.symbols.bytes())
        .map_err(|e| CliError::Corrupt(e.to_string()))?;
    eprintln!(
        "rsh: autotune[{}]: dispatch={} r={} shards={} streams={} decoder={} ({:.3} ms modeled on {})",
        if hit { "cache hit" } else { "modeled sweep" },
        decision.dispatch.name(),
        decision.reduction,
        decision.shards,
        decision.streams,
        decision.decoder.name(),
        decision.modeled_seconds() * 1e3,
        tuner.device().name,
    );
    if let Some(path) = &f.tune_cache {
        eprintln!(
            "rsh: tune cache {path}: {} entr{} ({} hit, {} miss this run)",
            tuner.cache().len(),
            if tuner.cache().len() == 1 { "y" } else { "ies" },
            tuner.hits,
            tuner.misses,
        );
    }
    Ok(packed)
}

/// `compress --shards/--streams/--devices/--buffers`: the sharded
/// multi-stream pipeline. The output is an RSHM multi-shard frame; the
/// printed summary carries the modeled makespan and overlap speedup, and
/// `--trace`/`--chrome` export the batch profile (one Chrome lane per
/// device × stream).
fn cmd_compress_batched(
    f: &Flags,
    raw: &[u8],
    syms: &[u16],
    default_bins: usize,
    output: &str,
) -> CmdResult {
    let mut opts = BatchOptions::new(f.bins.unwrap_or(default_bins));
    if let Some(n) = f.shards {
        opts.shard_symbols = syms.len().div_ceil(n).max(1);
    }
    if let Some(n) = f.streams {
        opts.streams = n;
    }
    opts.devices = f.device_fleet()?;
    opts.buffers = f.buffers.unwrap_or(0);
    opts.magnitude = f.magnitude;
    opts.reduction = f.reduction;
    opts.symbol_bytes = f.symbols.bytes();

    let (packed, profile) = metrics::profile_compress_batched(syms, &opts)
        .map_err(|e| CliError::Corrupt(e.to_string()))?;
    write_file(output, &packed)?;
    if let Some(path) = &f.trace {
        write_file(path, profile.to_json_string().as_bytes())?;
        eprintln!("rsh: trace written to {path}");
    }
    if let Some(path) = &f.chrome {
        write_file(path, profile.to_chrome_trace().as_bytes())?;
        eprintln!("rsh: chrome trace written to {path} (load in chrome://tracing or Perfetto)");
    }
    eprintln!(
        "{} -> {} bytes ({:.3}x) in {:.3} ms modeled; {} shards x {} streams x {} devices, {:.2}x overlap speedup",
        raw.len(),
        packed.len(),
        raw.len() as f64 / packed.len() as f64,
        profile.report.makespan * 1e3,
        profile.report.shards.len(),
        opts.streams,
        opts.devices.len(),
        profile.report.speedup(),
    );
    Ok(0)
}

fn cmd_decompress(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err(CliError::Usage("decompress needs <input> <output>".into()));
    };
    let packed = read_file(input)?;
    let mut opts =
        if f.best_effort { DecompressOptions::best_effort() } else { DecompressOptions::strict() };
    if let Some(s) = f.sentinel {
        opts.sentinel = s;
    }
    if let Some(d) = f.decoder {
        opts.decoder = d;
    }
    let symbol_bytes = if frame::is_frame(&packed) {
        frame::parse(&packed, opts.verify)
            .map_err(|e| CliError::Corrupt(e.to_string()))?
            .symbol_bytes
    } else if huff_core::tune::is_raw(&packed) {
        huff_core::tune::raw_info(&packed).map_err(|e| CliError::Corrupt(e.to_string()))?.0
    } else {
        archive::deserialize_with(&packed, &opts)
            .map_err(|e| CliError::Corrupt(e.to_string()))?
            .symbol_bytes
    };
    let rec = if (f.trace.is_some() || f.chrome.is_some())
        && !frame::is_frame(&packed)
        && !huff_core::tune::is_raw(&packed)
    {
        let gpu = f.gpu()?;
        let (rec, profile) = metrics::profile_decompress(&gpu, &packed, &opts)
            .map_err(|e| CliError::Corrupt(e.to_string()))?;
        write_profile_outputs(&f, &profile)?;
        rec
    } else {
        if f.trace.is_some() || f.chrome.is_some() {
            eprintln!(
                "rsh: multi-shard frames decode without a device profile; --trace/--chrome skipped"
            );
        }
        archive::decompress_with(&packed, &opts).map_err(|e| CliError::Corrupt(e.to_string()))?
    };
    let raw = symbols::SymbolWidth::from_bytes(symbol_bytes)
        .map_err(CliError::Corrupt)?
        .encode(&rec.symbols);
    write_file(output, &raw)?;
    eprintln!("{} -> {} bytes", packed.len(), raw.len());
    if rec.report.is_clean() {
        Ok(0)
    } else {
        println!("{}", report_json(&rec.report));
        eprintln!(
            "rsh: recovered with losses: {} of {} chunks damaged, {} symbols lost",
            rec.report.damaged_chunks.len(),
            rec.report.total_chunks,
            rec.report.symbols_lost,
        );
        Ok(EXIT_RECOVERED_WITH_LOSSES)
    }
}

/// `rsh cat <archive> [output] --range A..B`: decode only the requested
/// slice of the decoded output. Only the chunks covering the range are
/// decoded — via the archive's succinct seek index when present (O(1)
/// probes per lookup), via a chunk-table prefix scan otherwise. The
/// bytes go to `[output]` or stdout; the chunk/probe summary (and any
/// best-effort recovery report) goes to stderr so piped output stays
/// clean.
fn cmd_cat(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let (input, output) = match f.positional.as_slice() {
        [input] => (input, None),
        [input, output] => (input, Some(output)),
        _ => return Err(CliError::Usage("cat needs <archive> [output] --range A..B".into())),
    };
    let Some(range) = f.range.clone() else {
        return Err(CliError::Usage("cat needs --range A..B (decoded-output byte offsets)".into()));
    };
    if range.start > range.end {
        return Err(CliError::Usage(format!("--range {}..{} is inverted", range.start, range.end)));
    }
    let packed = read_file(input)?;
    let mut opts =
        if f.best_effort { DecompressOptions::best_effort() } else { DecompressOptions::strict() };
    if let Some(s) = f.sentinel {
        opts.sentinel = s;
    }
    if let Some(d) = f.decoder {
        opts.decoder = d;
    }
    let r = archive::decode_range(&packed, range.clone(), &opts)
        .map_err(|e| CliError::Corrupt(e.to_string()))?;
    match output {
        Some(path) => write_file(path, &r.bytes)?,
        None => {
            use std::io::Write;
            std::io::stdout()
                .write_all(&r.bytes)
                .map_err(|e| CliError::Io(format!("stdout: {e}")))?;
        }
    }
    let end = if range.end == u64::MAX { String::new() } else { range.end.to_string() };
    eprintln!(
        "rsh: {input}: bytes {}..{end}: {} bytes from {} of {} chunks, {} index probes ({})",
        range.start,
        r.bytes.len(),
        r.chunks_touched,
        r.total_chunks,
        r.index_probes,
        if r.index_used { "seek index" } else { "prefix scan" },
    );
    if r.report.is_clean() {
        Ok(0)
    } else {
        eprintln!("{}", report_json(&r.report));
        eprintln!(
            "rsh: recovered with losses: {} of {} chunks damaged, {} symbols lost",
            r.report.damaged_chunks.len(),
            r.report.total_chunks,
            r.report.symbols_lost,
        );
        Ok(EXIT_RECOVERED_WITH_LOSSES)
    }
}

fn cmd_verify(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err(CliError::Usage("verify needs <archive>".into()));
    };
    let packed = read_file(input)?;
    let report = archive::verify(&packed).map_err(|e| CliError::Corrupt(e.to_string()))?;
    println!("{}", report_json(&report));
    if report.is_clean() {
        eprintln!("rsh: {input}: ok ({} chunks)", report.total_chunks);
        Ok(0)
    } else {
        eprintln!(
            "rsh: {input}: {} of {} chunks damaged, {} symbols unrecoverable",
            report.damaged_chunks.len(),
            report.total_chunks,
            report.symbols_lost,
        );
        Ok(EXIT_CORRUPT)
    }
}

fn cmd_inspect(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err(CliError::Usage("inspect needs <archive>".into()));
    };
    let packed = read_file(input)?;
    if frame::is_frame(&packed) {
        let info = frame::parse(&packed, huff_core::Verify::Full)
            .map_err(|e| CliError::Corrupt(e.to_string()))?;
        println!("frame            {} bytes (RSHM v{})", packed.len(), info.version);
        println!(
            "symbols          {} ({}-byte native width)",
            info.total_symbols, info.symbol_bytes
        );
        println!(
            "shards           {} x {} symbols (each a self-contained RSH2 archive)",
            info.num_shards(),
            info.shard_symbols
        );
        for (i, range) in info.shard_ranges.iter().enumerate() {
            let span = info.shard_symbol_range(i).map_err(|e| CliError::Corrupt(e.to_string()))?;
            println!(
                "  shard {i:<3} {:>10} bytes  symbols {}..{}",
                range.len(),
                span.start,
                span.end
            );
        }
        return Ok(0);
    }
    if huff_core::tune::is_raw(&packed) {
        let (symbol_bytes, num_symbols) =
            huff_core::tune::raw_info(&packed).map_err(|e| CliError::Corrupt(e.to_string()))?;
        println!("raw container    {} bytes (RSHR, stored uncompressed)", packed.len());
        println!("symbols          {num_symbols} ({symbol_bytes}-byte native width)");
        println!("ratio            1.000x (autotune store-raw early exit)");
        return Ok(0);
    }
    let (stream, book, symbol_bytes) =
        archive::deserialize(&packed).map_err(|e| CliError::Corrupt(e.to_string()))?;
    println!("archive          {} bytes", packed.len());
    println!("symbols          {} ({}-byte native width)", stream.num_symbols, symbol_bytes);
    println!(
        "codebook         {} / {} coded symbols, H = {}",
        book.coded_symbols(),
        book.num_symbols(),
        book.max_len()
    );
    println!(
        "chunks           {} x 2^{} symbols, reduction 2^{}",
        stream.num_chunks(),
        stream.config.magnitude,
        stream.config.reduction
    );
    println!(
        "payload          {} bits ({} bytes)",
        stream.total_bits,
        stream.total_bits.div_ceil(8)
    );
    println!(
        "breaking units   {} ({:.6}% of symbols)",
        stream.outliers.num_units(),
        stream.breaking_fraction() * 100.0
    );
    println!("ratio            {:.3}x", stream.compression_ratio(u32::from(symbol_bytes) * 8));
    Ok(0)
}

fn cmd_profile(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err(CliError::Usage("profile needs <file>".into()));
    };
    let raw = read_file(input)?;
    let gpu = f.gpu()?;

    let is_archive = raw.len() >= 4 && (&raw[..4] == b"RSH1" || &raw[..4] == b"RSH2");
    if f.compare {
        return cmd_profile_compare(&f, &raw, is_archive);
    }
    let profile = if is_archive {
        let mut opts = if f.best_effort {
            DecompressOptions::best_effort()
        } else {
            DecompressOptions::strict()
        };
        if let Some(s) = f.sentinel {
            opts.sentinel = s;
        }
        if let Some(d) = f.decoder {
            opts.decoder = d;
        }
        let (_, profile) = metrics::profile_decompress(&gpu, &raw, &opts)
            .map_err(|e| CliError::Corrupt(e.to_string()))?;
        profile
    } else {
        let (syms, default_bins) = f.symbols.decode(&raw).map_err(CliError::Corrupt)?;
        let (_, _, profile) =
            metrics::profile_roundtrip(&gpu, &syms, &f.profile_options(default_bins))
                .map_err(|e| CliError::Corrupt(e.to_string()))?;
        profile
    };

    print!("{}", profile.render_table());
    if f.roofline || f.roofline_json.is_some() {
        let roofline = profile.roofline(f.roofline_threshold());
        if f.roofline {
            println!();
            print!("{}", roofline.render_table());
        }
        if let Some(path) = &f.roofline_json {
            write_file(path, roofline.to_json_string().as_bytes())?;
            eprintln!("rsh: roofline report written to {path}");
        }
    }
    write_profile_outputs(&f, &profile)?;
    match &profile.recovery {
        Some(r) if !r.is_clean() => Ok(EXIT_RECOVERED_WITH_LOSSES),
        _ => Ok(0),
    }
}

/// `rsh profile --compare`: run the same raw input through the modeled
/// compress pipeline under the fused and the unfused
/// `KernelPlan` and
/// print a side-by-side per-kernel roofline table. Kernel fusion is
/// encode-side only (no decode kernel changes, no on-disk byte changes),
/// so archive inputs are rejected.
fn cmd_profile_compare(f: &Flags, raw: &[u8], is_archive: bool) -> CmdResult {
    use huff_core::KernelPlan;
    if is_archive {
        return Err(CliError::Usage(
            "--compare contrasts the encode-side kernel plans; it needs a raw input (fusion \
             changes no decode kernels)"
                .into(),
        ));
    }
    if f.trace.is_some() || f.chrome.is_some() || f.roofline_json.is_some() {
        return Err(CliError::Usage(
            "--compare runs two profiles; drop --trace/--chrome/--roofline-json (run each plan \
             separately to export one)"
                .into(),
        ));
    }
    let (syms, default_bins) = f.symbols.decode(raw).map_err(CliError::Corrupt)?;
    let mut reports = Vec::new();
    for plan in [KernelPlan::fused(), KernelPlan::unfused()] {
        // A fresh device per plan: the clock accumulates launches.
        let gpu = f.gpu()?;
        let opts = f.profile_options(default_bins).plan(plan);
        let (packed_a, profile) = metrics::profile_compress(&gpu, &syms, &opts)
            .map_err(|e| CliError::Corrupt(e.to_string()))?;
        reports.push((packed_a, profile.roofline(f.roofline_threshold())));
    }
    let (fused_bytes, fused) = &reports[0];
    let (unfused_bytes, unfused) = &reports[1];
    debug_assert_eq!(fused_bytes, unfused_bytes, "plans must be bit-identical");
    print!("{}", metrics::roofline::render_comparison("fused", fused, "unfused", unfused));
    Ok(0)
}

/// `rsh stats <input> [output]`: reset the process-wide metrics registry,
/// run one real operation (compress for raw files — batched when the
/// batch flags are given — decompress for archives and frames), and dump
/// the registry on stdout as Prometheus text exposition (or JSON with
/// `--json`). The counters reconcile with the operation: `bytes_out`
/// equals the archive size after a compress, `shards_total` the frame's
/// shard count.
fn cmd_stats(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let (input, output) = match f.positional.as_slice() {
        [input] => (input, None),
        [input, output] => (input, Some(output)),
        _ => return Err(CliError::Usage("stats needs <input> [output]".into())),
    };
    let raw = read_file(input)?;
    metrics::registry::global().reset();

    let is_archive = frame::is_frame(&raw)
        || huff_core::tune::is_raw(&raw)
        || (raw.len() >= 4 && (&raw[..4] == b"RSH1" || &raw[..4] == b"RSH2"));
    let lossy = if is_archive {
        let mut opts = if f.best_effort {
            DecompressOptions::best_effort()
        } else {
            DecompressOptions::strict()
        };
        if let Some(s) = f.sentinel {
            opts.sentinel = s;
        }
        if let Some(d) = f.decoder {
            opts.decoder = d;
        }
        let rec =
            archive::decompress_with(&raw, &opts).map_err(|e| CliError::Corrupt(e.to_string()))?;
        if let Some(path) = output {
            let symbol_bytes = if frame::is_frame(&raw) {
                frame::parse(&raw, opts.verify)
                    .map_err(|e| CliError::Corrupt(e.to_string()))?
                    .symbol_bytes
            } else if huff_core::tune::is_raw(&raw) {
                huff_core::tune::raw_info(&raw).map_err(|e| CliError::Corrupt(e.to_string()))?.0
            } else {
                archive::deserialize_with(&raw, &opts)
                    .map_err(|e| CliError::Corrupt(e.to_string()))?
                    .symbol_bytes
            };
            let decoded = symbols::SymbolWidth::from_bytes(symbol_bytes)
                .map_err(CliError::Corrupt)?
                .encode(&rec.symbols);
            write_file(path, &decoded)?;
        }
        !rec.report.is_clean()
    } else {
        let (syms, default_bins) = f.symbols.decode(&raw).map_err(CliError::Corrupt)?;
        let packed = if f.autotune {
            autotune_compress(&f, &syms, default_bins)?
        } else if f.batched() {
            let mut opts = BatchOptions::new(f.bins.unwrap_or(default_bins));
            if let Some(n) = f.shards {
                opts.shard_symbols = syms.len().div_ceil(n).max(1);
            }
            if let Some(n) = f.streams {
                opts.streams = n;
            }
            opts.devices = f.device_fleet()?;
            opts.buffers = f.buffers.unwrap_or(0);
            opts.magnitude = f.magnitude;
            opts.reduction = f.reduction;
            opts.symbol_bytes = f.symbols.bytes();
            huff_core::batch::compress_batched(&syms, &opts)
                .map_err(|e| CliError::Corrupt(e.to_string()))?
                .0
        } else {
            let mut opts = CompressOptions::new(f.bins.unwrap_or(default_bins));
            opts.magnitude = f.magnitude;
            opts.reduction = f.reduction;
            opts.symbol_bytes = f.symbols.bytes();
            archive::compress(&syms, &opts).map_err(|e| CliError::Corrupt(e.to_string()))?
        };
        if let Some(path) = output {
            write_file(path, &packed)?;
        }
        false
    };

    let reg = metrics::registry::global();
    if f.json {
        println!("{}", reg.to_json());
    } else {
        print!("{}", reg.render());
    }
    if lossy {
        Ok(EXIT_RECOVERED_WITH_LOSSES)
    } else {
        Ok(0)
    }
}

fn cmd_bench(args: &[String]) -> CmdResult {
    let f = parse_flags(args)?;
    let [input] = f.positional.as_slice() else {
        return Err(CliError::Usage("bench needs <input>".into()));
    };
    let raw = read_file(input)?;
    let (syms, default_bins) = f.symbols.decode(&raw).map_err(CliError::Corrupt)?;
    let bins = f.bins.unwrap_or(default_bins);

    let freqs = huff_core::histogram::parallel_cpu::histogram(&syms, bins, 8);
    let book =
        huff_core::build_codebook(&freqs, 16).map_err(|e| CliError::Corrupt(e.to_string()))?;
    let cfg = huff_core::MergeConfig::auto::<u32>(10, &freqs, &book);
    println!(
        "{} bytes, {} bins, avg {:.4} bits, auto r = {}",
        raw.len(),
        bins,
        book.average_bitwidth(&freqs),
        cfg.reduction
    );

    let mb = raw.len() as f64 / 1e6;
    let run = |name: &str, f: &mut dyn FnMut() -> Result<(), String>| -> Result<(), CliError> {
        let t = std::time::Instant::now();
        f().map_err(CliError::Corrupt)?;
        println!("{name:<22} {:8.1} MB/s (host wall clock)", mb / t.elapsed().as_secs_f64());
        Ok(())
    };
    run("serial", &mut || {
        huff_core::encode::serial::encode(&syms, &book).map(|_| ()).map_err(|e| e.to_string())
    })?;
    run("multithread", &mut || {
        huff_core::encode::multithread::encode(&syms, &book, 8, 1 << 16)
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    run("reduce-shuffle", &mut || {
        huff_core::encode::reduce_shuffle::encode(
            &syms,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    })?;

    // Modeled device figure.
    let gpu = gpu_sim::Gpu::v100();
    let (_, times) = huff_core::encode::gpu::encode_on_gpu(
        &gpu,
        &syms,
        u64::from(f.symbols.bytes()),
        &book,
        cfg,
        BreakingStrategy::SparseSidecar,
    )
    .map_err(|e| CliError::Corrupt(e.to_string()))?;
    println!(
        "{:<22} {:8.1} GB/s (modeled V100)",
        "reduce-shuffle (V100)",
        raw.len() as f64 / times.total / 1e9
    );
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("rsh-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn parse_flags_defaults_and_overrides() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(f.magnitude, 10);
        assert!(f.reduction.is_none());
        let args: Vec<String> =
            ["--symbols", "u16le", "--bins", "512", "--reduction", "2", "in", "out"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.symbols, symbols::SymbolWidth::U16Le);
        assert_eq!(f.bins, Some(512));
        assert_eq!(f.reduction, Some(2));
        assert_eq!(f.positional, vec!["in", "out"]);
    }

    #[test]
    fn parse_flags_rejects_unknown() {
        assert!(parse_flags(&["--bogus".to_string()]).is_err());
        assert!(parse_flags(&["--bins".to_string()]).is_err());
    }

    #[test]
    fn compress_decompress_file_roundtrip() {
        let input = tmp("in.bin");
        let packed = tmp("out.rsh");
        let restored = tmp("restored.bin");
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        cmd_compress(&[input.clone(), packed.clone()].map(String::from)).unwrap();
        cmd_inspect(std::slice::from_ref(&packed)).unwrap();
        cmd_decompress(&[packed, restored.clone()]).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
    }

    #[test]
    fn u16_mode_roundtrip() {
        let input = tmp("in16.bin");
        let packed = tmp("out16.rsh");
        let restored = tmp("restored16.bin");
        let payload: Vec<u8> =
            (0..30_000u32).flat_map(|i| ((i % 900) as u16).to_le_bytes()).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> = vec![
            input,
            packed.clone(),
            "--symbols".into(),
            "u16le".into(),
            "--reduction".into(),
            "2".into(),
        ];
        cmd_compress(&args).unwrap();
        cmd_decompress(&[packed, restored.clone()]).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let r = cmd_compress(&["/nonexistent/x".to_string(), tmp("y")]);
        assert!(matches!(r, Err(CliError::Io(_))));
        let r = cmd_inspect(&["/nonexistent/x".to_string()]);
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn exit_code_mapping() {
        assert_eq!(CliError::Usage(String::new()).exit_code(), 1);
        assert_eq!(CliError::Io(String::new()).exit_code(), 2);
        assert_eq!(CliError::Corrupt(String::new()).exit_code(), 3);
    }

    #[test]
    fn parse_flags_recovery_options() {
        let args: Vec<String> =
            ["--best-effort", "--sentinel", "0", "a", "b"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.best_effort);
        assert_eq!(f.sentinel, Some(0));
        assert!(matches!(
            parse_flags(&["--sentinel".to_string(), "70000".to_string()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn decoder_flag_parses_and_rejects_garbage() {
        let args: Vec<String> =
            ["--decoder", "lut", "a", "b"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.decoder, Some(huff_core::DecoderKind::Lut));
        assert!(matches!(
            parse_flags(&["--decoder".to_string(), "warp".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_flags(&["--decoder".to_string()]), Err(CliError::Usage(_))));
    }

    #[test]
    fn decompress_with_each_decoder_backend_roundtrips() {
        let input = tmp("dec.bin");
        let packed = tmp("dec.rsh");
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        cmd_compress(&[input, packed.clone()].map(String::from)).unwrap();

        for decoder in ["serial", "chunked", "lut"] {
            let restored = tmp(&format!("dec-{decoder}.out"));
            let args: Vec<String> =
                vec![packed.clone(), restored.clone(), "--decoder".into(), decoder.into()];
            assert_eq!(cmd_decompress(&args).unwrap(), 0, "{decoder}");
            assert_eq!(std::fs::read(&restored).unwrap(), payload, "{decoder}");
        }
    }

    #[test]
    fn cat_range_extracts_the_exact_slice() {
        let input = tmp("cat.bin");
        let packed = tmp("cat.rsh");
        let payload: Vec<u8> = (0..120_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        cmd_compress(&[input, packed.clone()].map(String::from)).unwrap();

        let slice = tmp("cat.slice");
        let args: Vec<String> =
            vec![packed.clone(), slice.clone(), "--range".into(), "50000..51000".into()];
        assert_eq!(cmd_cat(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&slice).unwrap(), payload[50_000..51_000]);

        // Open-ended bounds: ..N is a prefix, N.. a suffix.
        let head = tmp("cat.head");
        let args: Vec<String> = vec![packed.clone(), head.clone(), "--range".into(), "..64".into()];
        assert_eq!(cmd_cat(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&head).unwrap(), payload[..64]);
        let tail = tmp("cat.tail");
        let args: Vec<String> =
            vec![packed.clone(), tail.clone(), "--range".into(), "119000..".into()];
        assert_eq!(cmd_cat(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&tail).unwrap(), payload[119_000..]);

        // Every decoder backend serves the same bytes.
        for decoder in ["serial", "chunked", "lut"] {
            let out = tmp(&format!("cat-{decoder}.slice"));
            let args: Vec<String> = vec![
                packed.clone(),
                out.clone(),
                "--range".into(),
                "30000..31000".into(),
                "--decoder".into(),
                decoder.into(),
            ];
            assert_eq!(cmd_cat(&args).unwrap(), 0, "{decoder}");
            assert_eq!(std::fs::read(&out).unwrap(), payload[30_000..31_000], "{decoder}");
        }
    }

    #[test]
    fn cat_works_on_frames_and_flags_usage_errors() {
        let input = tmp("catf.bin");
        let frame = tmp("catf.rshm");
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 113) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        let args: Vec<String> = vec![input, frame.clone(), "--shards".into(), "4".into()];
        cmd_compress(&args).unwrap();

        let slice = tmp("catf.slice");
        let args: Vec<String> =
            vec![frame.clone(), slice.clone(), "--range".into(), "90000..110000".into()];
        assert_eq!(cmd_cat(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&slice).unwrap(), payload[90_000..110_000]);

        // Missing --range, inverted range, garbage bounds: usage errors.
        assert!(matches!(cmd_cat(std::slice::from_ref(&frame)), Err(CliError::Usage(_))));
        let args: Vec<String> = vec![frame.clone(), "--range".into(), "9..5".into()];
        assert!(matches!(cmd_cat(&args), Err(CliError::Usage(_))));
        let args: Vec<String> = vec![frame, "--range".into(), "abc".into()];
        assert!(matches!(cmd_cat(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn cat_best_effort_recovers_damaged_ranges_with_exit_4() {
        let input = tmp("catd.bin");
        let packed = tmp("catd.rsh");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 199) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        cmd_compress(&[input, packed.clone()].map(String::from)).unwrap();

        // Flip a payload byte near the end of the archive.
        let mut bytes = std::fs::read(&packed).unwrap();
        let sections = archive::layout(&bytes).unwrap();
        let (_, range) = sections
            .iter()
            .find(|(s, _)| *s == huff_core::integrity::Section::Payload)
            .unwrap()
            .clone();
        bytes[range.end - 3] ^= 0x10;
        let damaged = tmp("catd-damaged.rsh");
        std::fs::write(&damaged, &bytes).unwrap();

        // A range before the damage still decodes strictly: only covering
        // chunks are CRC-checked.
        let head = tmp("catd.head");
        let args: Vec<String> =
            vec![damaged.clone(), head.clone(), "--range".into(), "0..1000".into()];
        assert_eq!(cmd_cat(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&head).unwrap(), payload[..1000]);

        // The damaged tail fails strictly, recovers best-effort (exit 4).
        let tail = tmp("catd.tail");
        let args: Vec<String> =
            vec![damaged.clone(), tail.clone(), "--range".into(), "99000..".into()];
        assert!(matches!(cmd_cat(&args), Err(CliError::Corrupt(_))));
        let args: Vec<String> = vec![
            damaged,
            tail.clone(),
            "--range".into(),
            "99000..".into(),
            "--best-effort".into(),
            "--sentinel".into(),
            "0".into(),
        ];
        assert_eq!(cmd_cat(&args).unwrap(), EXIT_RECOVERED_WITH_LOSSES);
        assert_eq!(std::fs::read(&tail).unwrap().len(), 1000);
    }

    #[test]
    fn report_json_is_stable() {
        let r = RecoveryReport {
            total_chunks: 8,
            damaged_chunks: vec![1, 5],
            damaged_ranges: vec![(1024, 2048), (5120, 6144)],
            symbols_lost: 2048,
        };
        assert_eq!(
            report_json(&r),
            "{\"report\":\"rsh-recovery\",\"total_chunks\":8,\"damaged_chunks\":[1,5],\
             \"damaged_ranges\":[[1024,2048],[5120,6144]],\"symbols_lost\":2048}"
        );
        let clean = RecoveryReport::clean(3);
        assert_eq!(
            report_json(&clean),
            "{\"report\":\"rsh-recovery\",\"total_chunks\":3,\"damaged_chunks\":[],\
             \"damaged_ranges\":[],\"symbols_lost\":0}"
        );
    }

    #[test]
    fn profile_raw_file_writes_trace_and_chrome() {
        let input = tmp("pin.bin");
        let trace = tmp("pin.trace.json");
        let chrome = tmp("pin.chrome.json");
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 61) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> =
            vec![input, "--trace".into(), trace.clone(), "--chrome".into(), chrome.clone()];
        assert_eq!(cmd_profile(&args).unwrap(), 0);

        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.starts_with("{\"schema\":\"rsh-trace-v1\""));
        assert!(t.contains("\"direction\":\"roundtrip\""));
        let c = std::fs::read_to_string(&chrome).unwrap();
        assert!(c.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn profile_archive_decompresses_and_flags_damage() {
        let input = tmp("pa.bin");
        let packed = tmp("pa.rsh");
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 89) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        cmd_compress(&[input, packed.clone()].map(String::from)).unwrap();

        assert_eq!(cmd_profile(std::slice::from_ref(&packed)).unwrap(), 0);

        // Damaged archive: strict profile errors, best-effort exits 4.
        let mut bytes = std::fs::read(&packed).unwrap();
        let sections = archive::layout(&bytes).unwrap();
        let (_, range) = sections
            .iter()
            .find(|(s, _)| *s == huff_core::integrity::Section::Payload)
            .unwrap()
            .clone();
        bytes[range.start + range.len() / 2] ^= 0x40;
        let damaged = tmp("pa-damaged.rsh");
        std::fs::write(&damaged, &bytes).unwrap();
        assert!(matches!(cmd_profile(std::slice::from_ref(&damaged)), Err(CliError::Corrupt(_))));
        let args: Vec<String> = vec![damaged, "--best-effort".into()];
        assert_eq!(cmd_profile(&args).unwrap(), EXIT_RECOVERED_WITH_LOSSES);
    }

    #[test]
    fn compress_with_trace_roundtrips_and_records_profile() {
        let input = tmp("tin.bin");
        let packed = tmp("tin.rsh");
        let restored = tmp("tin.out");
        let trace = tmp("tin.trace.json");
        let dtrace = tmp("tin.dtrace.json");
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 73) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> = vec![input, packed.clone(), "--trace".into(), trace.clone()];
        assert_eq!(cmd_compress(&args).unwrap(), 0);
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"direction\":\"compress\""));
        assert!(t.contains("\"stage\":\"histogram\""));

        let args: Vec<String> = vec![packed, restored.clone(), "--trace".into(), dtrace.clone()];
        assert_eq!(cmd_decompress(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
        let t = std::fs::read_to_string(&dtrace).unwrap();
        assert!(t.contains("\"direction\":\"decompress\""));
        assert!(t.contains("\"stage\":\"decode\""));
    }

    #[test]
    fn batched_compress_frame_roundtrips() {
        let input = tmp("bin.bin");
        let packed = tmp("bin.rshm");
        let restored = tmp("bin.out");
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 101) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> = vec![
            input,
            packed.clone(),
            "--shards".into(),
            "4".into(),
            "--streams".into(),
            "2".into(),
        ];
        assert_eq!(cmd_compress(&args).unwrap(), 0);
        let bytes = std::fs::read(&packed).unwrap();
        assert_eq!(&bytes[..4], b"RSHM");

        // verify / inspect / decompress all accept the frame transparently.
        assert_eq!(cmd_verify(std::slice::from_ref(&packed)).unwrap(), 0);
        assert_eq!(cmd_inspect(std::slice::from_ref(&packed)).unwrap(), 0);
        assert_eq!(cmd_decompress(&[packed, restored.clone()].map(String::from)).unwrap(), 0);
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
    }

    #[test]
    fn batched_compress_writes_batch_trace() {
        let input = tmp("btrace.bin");
        let packed = tmp("btrace.rshm");
        let trace = tmp("btrace.trace.json");
        let chrome = tmp("btrace.chrome.json");
        let payload: Vec<u8> = (0..150_000u32).map(|i| (i % 67) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> = vec![
            input,
            packed,
            "--shards".into(),
            "3".into(),
            "--devices".into(),
            "v100,rtx5000".into(),
            "--trace".into(),
            trace.clone(),
            "--chrome".into(),
            chrome.clone(),
        ];
        assert_eq!(cmd_compress(&args).unwrap(), 0);
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"direction\":\"compress-batched\""));
        assert!(t.contains("\"speedup\":"));
        let c = std::fs::read_to_string(&chrome).unwrap();
        assert!(c.contains("gpu0 (V100)"));
        assert!(c.contains("gpu1 (RTX 5000)"));
    }

    #[test]
    fn batch_flags_parse_and_reject_garbage() {
        let args: Vec<String> =
            ["--shards", "8", "--streams", "4", "--buffers", "2", "--devices", "v100", "a", "b"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.batched());
        assert_eq!(f.shards, Some(8));
        assert_eq!(f.streams, Some(4));
        assert_eq!(f.buffers, Some(2));
        assert_eq!(f.device_fleet().unwrap().len(), 1);
        assert!(matches!(
            parse_flags(&["--shards".to_string(), "0".to_string()]),
            Err(CliError::Usage(_))
        ));
        let f = parse_flags(&["--devices".to_string(), "v100,tpu".to_string()]).unwrap();
        assert!(matches!(f.device_fleet(), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_device_is_a_usage_error() {
        let input = tmp("dev.bin");
        std::fs::write(&input, vec![1u8; 1000]).unwrap();
        let args: Vec<String> = vec![input, "--device".into(), "tpu".into()];
        assert!(matches!(cmd_profile(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn verify_and_best_effort_exit_codes() {
        let input = tmp("vin.bin");
        let packed = tmp("vout.rsh");
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 83) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        assert_eq!(cmd_compress(&[input.clone(), packed.clone()].map(String::from)).unwrap(), 0);

        // Clean archive verifies with exit 0.
        assert_eq!(cmd_verify(std::slice::from_ref(&packed)).unwrap(), 0);

        // Damage one payload byte.
        let mut bytes = std::fs::read(&packed).unwrap();
        let sections = archive::layout(&bytes).unwrap();
        let (_, range) = sections
            .iter()
            .find(|(s, _)| *s == huff_core::integrity::Section::Payload)
            .unwrap()
            .clone();
        bytes[range.start + range.len() / 2] ^= 0x40;
        let damaged = tmp("vdamaged.rsh");
        std::fs::write(&damaged, &bytes).unwrap();

        // verify: exit 3. strict decompress: typed corrupt error (3).
        assert_eq!(cmd_verify(std::slice::from_ref(&damaged)).unwrap(), EXIT_CORRUPT);
        let restored = tmp("vrestored.bin");
        let r = cmd_decompress(&[damaged.clone(), restored.clone()].map(String::from));
        assert!(matches!(r, Err(CliError::Corrupt(_))));

        // best-effort: exit 4, output same length as the original.
        let args: Vec<String> = vec![
            damaged,
            restored.clone(),
            "--best-effort".into(),
            "--sentinel".into(),
            "0".into(),
        ];
        assert_eq!(cmd_decompress(&args).unwrap(), EXIT_RECOVERED_WITH_LOSSES);
        assert_eq!(std::fs::read(&restored).unwrap().len(), payload.len());
    }

    #[test]
    fn roofline_flags_parse_and_reject_garbage() {
        let args: Vec<String> =
            ["--roofline", "--threshold", "0.7", "--roofline-json", "r.json", "in"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.roofline);
        assert_eq!(f.threshold, Some(0.7));
        assert_eq!(f.roofline_json.as_deref(), Some("r.json"));
        assert!((f.roofline_threshold() - 0.7).abs() < 1e-12);

        // Default threshold when the flag is absent.
        let f = parse_flags(&[]).unwrap();
        assert_eq!(f.roofline_threshold(), metrics::roofline::DEFAULT_THRESHOLD);

        // Out-of-range or missing values are usage errors.
        for bad in [&["--threshold", "0"][..], &["--threshold", "1.5"], &["--threshold"]] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(matches!(parse_flags(&args), Err(CliError::Usage(_))), "{bad:?}");
        }
        assert!(matches!(parse_flags(&["--roofline-json".to_string()]), Err(CliError::Usage(_))));
    }

    #[test]
    fn profile_roofline_json_has_schema_and_classifies_kernels() {
        let input = tmp("roof.bin");
        let report = tmp("roof.roofline.json");
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 61) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> =
            vec![input, "--roofline".into(), "--roofline-json".into(), report.clone()];
        assert_eq!(cmd_profile(&args).unwrap(), 0);

        let r = std::fs::read_to_string(&report).unwrap();
        assert!(r.starts_with("{\"schema\":\"rsh-roofline-v1\""));
        assert!(r.contains("\"bound\":"));
        assert!(r.contains("\"efficiency\":"));
        assert!(r.contains("enc_reduce_merge"));
    }

    #[test]
    fn stats_compresses_raw_input_and_writes_output() {
        let input = tmp("stats.bin");
        let packed = tmp("stats.rsh");
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 71) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let args: Vec<String> = vec![input, packed.clone()];
        assert_eq!(cmd_stats(&args).unwrap(), 0);

        // The operation is real: the written archive roundtrips, and the
        // registry saw at least its bytes (exact reconciliation is
        // asserted under a lock in tests/roofline_metrics.rs — the
        // process-wide registry races other tests here).
        let archive_bytes = std::fs::read(&packed).unwrap();
        let restored = tmp("stats.out");
        cmd_decompress(&[packed, restored.clone()].map(String::from)).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), payload);
        let g = metrics::registry::global();
        assert!(
            g.get("rsh_bytes_out_total", &[("direction", "compress")])
                >= archive_bytes.len() as f64
        );
    }

    #[test]
    fn stats_handles_archives_and_frames() {
        let input = tmp("statsa.bin");
        let packed = tmp("statsa.rsh");
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 53) as u8).collect();
        std::fs::write(&input, &payload).unwrap();
        cmd_compress(&[input.clone(), packed.clone()].map(String::from)).unwrap();

        // Archive input: stats decompresses it; [output] gets the symbols.
        let restored = tmp("statsa.out");
        let args: Vec<String> = vec![packed, restored.clone(), "--json".into()];
        assert_eq!(cmd_stats(&args).unwrap(), 0);
        assert_eq!(std::fs::read(&restored).unwrap(), payload);

        // Frame input via the batched compress path.
        let frame = tmp("statsa.rshm");
        let args: Vec<String> = vec![input, frame.clone(), "--shards".into(), "4".into()];
        assert_eq!(cmd_stats(&args).unwrap(), 0);
        let bytes = std::fs::read(&frame).unwrap();
        assert_eq!(&bytes[..4], b"RSHM");
        let rframe = tmp("statsa.rshm.out");
        assert_eq!(cmd_stats(&[frame, rframe.clone()].map(String::from)).unwrap(), 0);
        assert_eq!(std::fs::read(&rframe).unwrap(), payload);
    }
}
