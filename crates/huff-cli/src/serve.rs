//! `rsh serve` — a long-running compression service over the serving
//! engine ([`huff_core::serve`]).
//!
//! A deliberately small HTTP/1.1 shim over `std::net::TcpListener` (no
//! external dependencies; see FORMAT.md §8 for the wire protocol):
//! connections are accepted sequentially and each carries exactly one
//! request (`Connection: close`). The *engine* decides admission,
//! deadlines, retries and degradation in modeled virtual time — the
//! shim only translates HTTP to engine requests and outcomes to status
//! codes:
//!
//! | outcome        | status | notes |
//! |----------------|--------|-------|
//! | success        | 200    | payload bytes |
//! | degraded       | 200    | `x-rsh-degraded` + `x-rsh-symbols-lost` headers |
//! | shed           | 429    | `rsh-error-v1` JSON body |
//! | deadline miss  | 504    | `rsh-error-v1` JSON body |
//! | failed         | 500    | `rsh-error-v1` JSON body |
//!
//! Every response carries `x-rsh-trace-id`, echoing the caller's
//! `x-rsh-trace-id` header or a generated `rsh-<n>` ID. `GET /metrics`
//! exposes the process-global registry in Prometheus text exposition —
//! the same surface as `rsh stats` — including the serve counters
//! (requests, retries, sheds, deadline misses, degradations, queue
//! wait). Virtual arrival times advance `--gap-us` per request, so a
//! gap smaller than the modeled service time drives the queue into
//! admission control deterministically.
//!
//! `--dashboard` streams one summary line per completed request on
//! stderr — class, outcome, virtual latency, the rolling per-class
//! admitted-request p50/p99/p999 and the worst error-budget burn rate
//! across the default objectives
//! ([`huff_core::slo::default_objectives`]) — and prints the full SLO
//! table at shutdown. The rolling numbers come from incremental
//! [`Dashboard`] state folded forward one completion at a time, not
//! from re-evaluating the full report per request. `--spans PATH` writes every request's
//! span tree as `rsh-span-v1` JSONL and `--chrome PATH` the per-request
//! Chrome/Perfetto lanes when the listener stops (FORMAT.md §11).

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use huff_core::frame;
use huff_core::integrity::{DecompressOptions, RecoveryMode, Verify};
use huff_core::metrics;
use huff_core::metrics::latency::LatencyHistogram;
use huff_core::serve::{ChaosConfig, Completion, Engine, EngineConfig, Outcome, Request, Response};
use huff_core::slo::Objective;
use huff_core::{archive, DecoderKind};

use crate::{symbols, CliError, CmdResult, USAGE};

/// Parsed `rsh serve` flags.
struct ServeFlags {
    addr: String,
    workers: usize,
    queue: usize,
    shard_symbols: usize,
    deadline_ms: Option<f64>,
    gap_us: f64,
    max_requests: Option<u64>,
    chaos: Option<u64>,
    autotune: bool,
    tune_cache: Option<String>,
    dashboard: bool,
    spans: Option<String>,
    chrome: Option<String>,
}

impl ServeFlags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut f = ServeFlags {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue: 8,
            shard_symbols: 1 << 16,
            deadline_ms: None,
            gap_us: 1000.0,
            max_requests: None,
            chaos: None,
            autotune: false,
            tune_cache: None,
            dashboard: false,
            spans: None,
            chrome: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |flag: &str| {
                it.next().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--addr" => f.addr = val("--addr")?.clone(),
                "--workers" => {
                    f.workers = parse_num(val("--workers")?, "--workers")?;
                }
                "--queue" => f.queue = parse_num(val("--queue")?, "--queue")?,
                "--shard-symbols" => {
                    f.shard_symbols = parse_num(val("--shard-symbols")?, "--shard-symbols")?;
                }
                "--deadline-ms" => {
                    let v: f64 = parse_num(val("--deadline-ms")?, "--deadline-ms")?;
                    f.deadline_ms = Some(v);
                }
                "--gap-us" => f.gap_us = parse_num(val("--gap-us")?, "--gap-us")?,
                "--max-requests" => {
                    f.max_requests = Some(parse_num(val("--max-requests")?, "--max-requests")?);
                }
                "--chaos" => f.chaos = Some(parse_num(val("--chaos")?, "--chaos")?),
                "--autotune" => f.autotune = true,
                "--tune-cache" => f.tune_cache = Some(val("--tune-cache")?.clone()),
                "--dashboard" => f.dashboard = true,
                "--spans" => f.spans = Some(val("--spans")?.clone()),
                "--chrome" => f.chrome = Some(val("--chrome")?.clone()),
                other => {
                    return Err(CliError::Usage(format!("unknown serve flag {other:?}\n{USAGE}")))
                }
            }
        }
        if f.workers == 0 || f.queue == 0 || f.shard_symbols == 0 {
            return Err(CliError::Usage(
                "serve needs nonzero --workers, --queue and --shard-symbols".into(),
            ));
        }
        Ok(f)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::Usage(format!("{flag}: cannot parse {s:?}")))
}

/// Incremental `--dashboard` state.
///
/// Re-evaluating [`Engine::slo_report`] after every completed request
/// rebuilds the full completion report and rescans every sample —
/// quadratic over a long-running serve session. This folds each
/// completion forward once instead: a rolling admitted-request latency
/// histogram per class (quantiles index an already-sorted sample set)
/// and, per objective, the rolling window of (finish, good) samples its
/// burn rate is defined over. Work per request is bounded by the window
/// population, never by the session length, and the printed numbers
/// match a full `slo::evaluate` at the same instant (see the unit
/// tests).
struct Dashboard {
    objectives: Vec<Objective>,
    /// Per-objective rolling window: the objective's class samples as
    /// `(finish, good)`, kept sorted by finish so aging out the front
    /// against the window cutoff is exact even when multi-worker
    /// finishes land out of submission order.
    windows: Vec<VecDeque<(f64, bool)>>,
    /// Good-sample count per window.
    good: Vec<u64>,
    /// Rolling admitted-request (non-shed) latency histogram per class.
    hists: BTreeMap<&'static str, LatencyHistogram>,
    /// Newest completion instant; windows are anchored here, matching
    /// `slo::evaluate`'s `now`.
    now: f64,
}

/// One dashboard line's rolling numbers, all in virtual seconds.
struct DashStats {
    p50: f64,
    p99: f64,
    p999: f64,
    worst_burn: f64,
}

impl Dashboard {
    fn new(objectives: Vec<Objective>) -> Self {
        let n = objectives.len();
        Dashboard {
            objectives,
            windows: vec![VecDeque::new(); n],
            good: vec![0; n],
            hists: BTreeMap::new(),
            now: 0.0,
        }
    }

    /// Fold one completion in and return the rolling stats to print.
    fn update(&mut self, c: &Completion) -> DashStats {
        let latency = c.queue_wait + c.backoff + c.service;
        self.now = self.now.max(c.finish);
        let mut worst_burn = 0.0f64;
        for (i, o) in self.objectives.iter().enumerate() {
            let w = &mut self.windows[i];
            if o.class == c.class {
                let good = c.outcome.served() && latency <= o.threshold_seconds;
                let at = w.partition_point(|&(f, _)| f < c.finish);
                w.insert(at, (c.finish, good));
                if good {
                    self.good[i] += 1;
                }
            }
            // Age out samples that left the rolling window; `evaluate`
            // keeps strictly `finish > now − window`.
            let cutoff = self.now - o.window_seconds;
            while w.front().is_some_and(|&(f, _)| f <= cutoff) {
                if w.pop_front().expect("front exists").1 {
                    self.good[i] -= 1;
                }
            }
            let total = w.len() as u64;
            if total > 0 {
                let bad = (total - self.good[i]) as f64;
                worst_burn = worst_burn.max(bad / total as f64 / o.budget());
            }
        }
        if c.outcome.label() != "shed" {
            self.hists.entry(c.class).or_default().observe(latency, &c.trace_id);
        }
        let (p50, p99, p999) = match self.hists.get(c.class) {
            Some(h) => (h.quantile(0.50), h.quantile(0.99), h.quantile(0.999)),
            // Only sheds seen for this class so far: no admitted samples.
            None => (0.0, 0.0, 0.0),
        };
        DashStats { p50, p99, p999, worst_burn }
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpRequest {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Read one HTTP/1.1 request (request line, headers, `Content-Length`
/// body) from the stream.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err("request headers exceed 64 KiB".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line {request_line:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, headers, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write one HTTP/1.1 response and close the write side.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // A peer that hung up early is its own problem; the next connection
    // proceeds regardless.
    let _ = stream.write_all(head.as_bytes()).and_then(|_| stream.write_all(body));
    let _ = stream.flush();
}

/// Structured `rsh-error-v1` body for shed / deadline / failure
/// responses (FORMAT.md §8).
fn error_body(error: &str, reason: &str, trace_id: &str) -> Vec<u8> {
    format!(
        "{{\"schema\":\"rsh-error-v1\",\"error\":{:?},\"reason\":{:?},\"trace_id\":{:?}}}",
        error, reason, trace_id
    )
    .into_bytes()
}

/// Best-effort read of the payload's native symbol width; defaults to
/// one byte when the header cannot be read (the engine will surface the
/// real error).
fn symbol_width(bytes: &[u8]) -> symbols::SymbolWidth {
    let b = if frame::is_frame(bytes) {
        frame::parse(bytes, Verify::None).map(|i| i.symbol_bytes).unwrap_or(1)
    } else if huff_core::tune::is_raw(bytes) {
        huff_core::tune::raw_info(bytes).map(|(w, _)| w).unwrap_or(1)
    } else {
        let opts = DecompressOptions {
            verify: Verify::None,
            mode: RecoveryMode::BestEffort,
            sentinel: u16::MAX,
            decoder: DecoderKind::Serial,
        };
        archive::deserialize_with(bytes, &opts).map(|p| p.symbol_bytes).unwrap_or(1)
    };
    symbols::SymbolWidth::from_bytes(b).unwrap_or(symbols::SymbolWidth::U8)
}

/// Entry point for `rsh serve`.
pub(crate) fn cmd_serve(args: &[String]) -> CmdResult {
    let f = ServeFlags::parse(args)?;

    let mut cfg = EngineConfig::new(256);
    cfg.workers = f.workers;
    cfg.queue_capacity = f.queue;
    cfg.batch.shard_symbols = f.shard_symbols;
    cfg.batch.symbol_bytes = 1;
    let mut engine = match f.chaos {
        Some(seed) => Engine::with_chaos(cfg, ChaosConfig::storm(seed)),
        None => Engine::new(cfg),
    };
    if f.autotune || f.tune_cache.is_some() {
        let device = gpu_sim::DeviceSpec::v100();
        let tuner = match &f.tune_cache {
            Some(path) => huff_core::Tuner::with_cache_path(device, path),
            None => huff_core::Tuner::new(device),
        };
        engine = engine.with_tuner(tuner);
    }

    let listener = TcpListener::bind(&f.addr)
        .map_err(|e| CliError::Io(format!("cannot bind {}: {e}", f.addr)))?;
    let local = listener.local_addr().map_err(|e| CliError::Io(e.to_string()))?;
    // Tests bind port 0 and need the real port before connecting.
    println!("rsh serve listening on {local}");
    let _ = std::io::stdout().flush();

    let mut handled: u64 = 0;
    let gap_s = f.gap_us * 1e-6;
    let mut dashboard = f.dashboard.then(|| Dashboard::new(huff_core::slo::default_objectives()));
    for conn in listener.incoming() {
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        handle_connection(
            &mut engine,
            &mut stream,
            handled,
            gap_s,
            f.deadline_ms,
            dashboard.as_mut(),
        );
        handled += 1;
        if f.max_requests.is_some_and(|m| handled >= m) {
            break;
        }
    }

    if let Some(path) = &f.spans {
        std::fs::write(path, engine.span_jsonl())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        eprintln!("rsh: span trees written to {path} (rsh-span-v1 JSONL)");
    }
    if let Some(path) = &f.chrome {
        std::fs::write(path, engine.chrome_spans())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        eprintln!("rsh: chrome spans written to {path} (one lane per request)");
    }
    if f.dashboard {
        let report = engine.slo_report(&huff_core::slo::default_objectives());
        eprint!("{}", report.render_table());
    }
    Ok(0)
}

fn handle_connection(
    engine: &mut Engine,
    stream: &mut TcpStream,
    seq: u64,
    gap_s: f64,
    default_deadline_ms: Option<f64>,
    dashboard: Option<&mut Dashboard>,
) {
    let req = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let body = error_body(&e, "bad_request", "-");
            write_response(stream, 400, "Bad Request", "application/json", &[], &body);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            write_response(stream, 200, "OK", "application/json", &[], b"{\"status\":\"ok\"}");
        }
        ("GET", "/metrics") => {
            let text = metrics::registry::global().render();
            write_response(stream, 200, "OK", "text/plain; version=0.0.4", &[], text.as_bytes());
        }
        ("POST", "/compress") | ("POST", "/decompress") => {
            handle_job(engine, stream, &req, seq, gap_s, default_deadline_ms, dashboard);
        }
        (_, path) => {
            let body = error_body(&format!("no route {path:?}"), "not_found", "-");
            write_response(stream, 404, "Not Found", "application/json", &[], &body);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_job(
    engine: &mut Engine,
    stream: &mut TcpStream,
    http: &HttpRequest,
    seq: u64,
    gap_s: f64,
    default_deadline_ms: Option<f64>,
    dashboard: Option<&mut Dashboard>,
) {
    let trace_id = http
        .header("x-rsh-trace-id")
        .map(str::to_string)
        .unwrap_or_else(|| format!("rsh-{seq:08x}"));
    let arrival = seq as f64 * gap_s;
    let deadline_ms = http
        .header("x-rsh-deadline-ms")
        .and_then(|v| v.parse::<f64>().ok())
        .or(default_deadline_ms);

    if http.body.is_empty() {
        let body = error_body("empty request body", "bad_request", &trace_id);
        write_response(stream, 400, "Bad Request", "application/json", &[], &body);
        return;
    }

    let is_compress = http.path == "/compress";
    let width = if is_compress { symbols::SymbolWidth::U8 } else { symbol_width(&http.body) };
    let mut req = if is_compress {
        let syms: Vec<u16> = http.body.iter().map(|&b| u16::from(b)).collect();
        Request::compress(trace_id.clone(), arrival, syms)
    } else {
        Request::decompress(trace_id.clone(), arrival, http.body.clone())
    };
    if let Some(ms) = deadline_ms {
        req = req.with_deadline(ms * 1e-3);
    }

    let completion = match engine.submit(req) {
        Ok(c) => c.clone(),
        Err(e) => {
            let body = error_body(&e.to_string(), "engine_error", &trace_id);
            write_response(stream, 500, "Internal Server Error", "application/json", &[], &body);
            return;
        }
    };

    let mut headers = vec![
        ("x-rsh-trace-id".to_string(), trace_id.clone()),
        ("x-rsh-outcome".to_string(), completion.outcome.label().to_string()),
    ];
    match &completion.outcome {
        Outcome::Success | Outcome::Degraded { .. } => {
            if let Outcome::Degraded { backend, symbols_lost } = &completion.outcome {
                headers.push(("x-rsh-degraded".to_string(), backend.clone()));
                headers.push(("x-rsh-symbols-lost".to_string(), symbols_lost.to_string()));
            }
            let body = match &completion.response {
                Some(Response::Frame(bytes)) => bytes.clone(),
                Some(Response::Symbols(syms)) => width.encode(syms),
                Some(Response::Bytes(bytes)) => bytes.clone(),
                None => Vec::new(),
            };
            write_response(stream, 200, "OK", "application/octet-stream", &headers, &body);
        }
        Outcome::Shed { reason } => {
            let body = error_body("request shed at admission", reason, &trace_id);
            write_response(stream, 429, "Too Many Requests", "application/json", &headers, &body);
        }
        Outcome::DeadlineMiss { budget, needed } => {
            let body = error_body(
                &format!("deadline {budget:.6}s missed: needed {needed:.6}s"),
                "deadline",
                &trace_id,
            );
            write_response(stream, 504, "Gateway Timeout", "application/json", &headers, &body);
        }
        Outcome::Failed { error } => {
            let body = error_body(error, "failed", &trace_id);
            write_response(
                stream,
                500,
                "Internal Server Error",
                "application/json",
                &headers,
                &body,
            );
        }
    }

    if let Some(dash) = dashboard {
        let lat = completion.queue_wait + completion.backoff + completion.service;
        let stats = dash.update(&completion);
        eprintln!(
            "rsh: dash {} class={} outcome={} lat_ms={:.4} p50_ms={:.4} p99_ms={:.4} \
             p999_ms={:.4} worst_burn={:.3}",
            completion.trace_id,
            completion.class,
            completion.outcome.label(),
            lat * 1e3,
            stats.p50 * 1e3,
            stats.p99 * 1e3,
            stats.p999 * 1e3,
            stats.worst_burn,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huff_core::batch::compress_batched;
    use huff_core::slo;

    /// The incremental dashboard must print the same rolling numbers a
    /// full re-evaluation at the same instant would — per completion,
    /// across admissions, sheds, deadline misses and chaos faults.
    #[test]
    fn dashboard_matches_full_slo_evaluation_per_request() {
        let mut cfg = EngineConfig::new(256);
        cfg.queue_capacity = 4;
        cfg.batch.shard_symbols = 2048;
        cfg.batch.symbol_bytes = 1;
        let syms: Vec<u16> = (0..20_000).map(|i| (i % 64) as u16).collect();
        let (frame, _) = compress_batched(&syms, &cfg.batch).unwrap();
        let mut eng = Engine::with_chaos(cfg, ChaosConfig::storm(11));
        let objectives = slo::default_objectives();
        let mut dash = Dashboard::new(objectives.clone());
        let mut sheds = 0;
        for i in 0..30 {
            let t = i as f64 * 40e-6;
            let req = match i % 3 {
                0 => Request::compress(format!("c{i}"), t, syms.clone()),
                1 => Request::decompress(format!("d{i}"), t, frame.clone()).with_deadline(0.3),
                _ => Request::decompress_range(format!("r{i}"), t, frame.clone(), 0..512),
            };
            let c = eng.submit(req).unwrap().clone();
            sheds += usize::from(c.outcome.label() == "shed");
            let stats = dash.update(&c);

            let report = eng.slo_report(&objectives);
            let batch_burn = report.statuses.iter().map(|s| s.burn_rate).fold(0.0, f64::max);
            assert_eq!(
                stats.worst_burn, batch_burn,
                "request {i}: incremental burn diverged from slo::evaluate"
            );
            let h = eng.latency().admitted(c.class);
            assert_eq!(stats.p50, h.quantile(0.50), "request {i}: p50 diverged");
            assert_eq!(stats.p99, h.quantile(0.99), "request {i}: p99 diverged");
            assert_eq!(stats.p999, h.quantile(0.999), "request {i}: p999 diverged");
        }
        assert!(sheds > 0, "the overload must exercise the shed path");
    }
}
