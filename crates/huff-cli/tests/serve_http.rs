//! End-to-end tests for `rsh serve` over real TCP.
//!
//! Each test spawns the actual `rsh` binary with `--addr 127.0.0.1:0
//! --max-requests N`, parses the bound address from the announced
//! `rsh serve listening on ...` line, and drives raw HTTP/1.1 requests
//! against it. The server accepts connections sequentially and exits
//! after `N`, so every test is self-terminating.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rsh"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rsh serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("rsh serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
            .to_string();
        Server { child, addr }
    }

    fn finish(mut self) {
        let status = self.child.wait().expect("wait for rsh serve");
        assert!(status.success(), "rsh serve exited with {status}");
    }
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Send one raw HTTP/1.1 request and read the full response (the server
/// closes the connection after each reply).
fn roundtrip(addr: &str, method: &str, path: &str, headers: &[(&str, &str)], body: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req =
        format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n", body.len());
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    stream.flush().expect("flush");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split =
        raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response has a header terminator");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    Reply { status, headers, body: raw[split + 4..].to_vec() }
}

#[test]
fn serve_roundtrips_compress_then_decompress_bit_exactly() {
    // Generous virtual gap: no admission pressure, everything succeeds.
    let srv = Server::spawn(&["--max-requests", "8", "--gap-us", "100000"]);

    let health = roundtrip(&srv.addr, "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"{\"status\":\"ok\"}");

    let missing = roundtrip(&srv.addr, "GET", "/nope", &[], b"");
    assert_eq!(missing.status, 404);
    let text = String::from_utf8_lossy(&missing.body).to_string();
    assert!(text.contains("\"schema\":\"rsh-error-v1\""), "404 body: {text}");
    assert!(text.contains("not_found"), "404 body: {text}");

    let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
    let compress =
        roundtrip(&srv.addr, "POST", "/compress", &[("x-rsh-trace-id", "it-c1")], &payload);
    assert_eq!(
        compress.status,
        200,
        "compress failed: {}",
        String::from_utf8_lossy(&compress.body)
    );
    assert_eq!(compress.header("x-rsh-trace-id"), Some("it-c1"));
    assert_eq!(compress.header("x-rsh-outcome"), Some("success"));
    assert!(
        !compress.body.is_empty() && compress.body.len() < payload.len(),
        "frame did not compress"
    );

    let decompress = roundtrip(&srv.addr, "POST", "/decompress", &[], &compress.body);
    assert_eq!(decompress.status, 200);
    assert_eq!(decompress.header("x-rsh-outcome"), Some("success"));
    assert!(decompress.header("x-rsh-trace-id").is_some_and(|t| t.starts_with("rsh-")));
    assert_eq!(decompress.body, payload, "decompressed bytes differ from the original payload");

    // Two back-to-back scrapes with no intervening jobs are byte-identical.
    let scrape_a = roundtrip(&srv.addr, "GET", "/metrics", &[], b"");
    let scrape_b = roundtrip(&srv.addr, "GET", "/metrics", &[], b"");
    assert_eq!(scrape_a.status, 200);
    assert_eq!(scrape_a.body, scrape_b.body, "metrics exposition is not deterministic");
    let metrics = String::from_utf8_lossy(&scrape_a.body).to_string();
    assert!(metrics.contains("rsh_requests_total"), "serve counters missing:\n{metrics}");

    let empty = roundtrip(&srv.addr, "POST", "/compress", &[], b"");
    assert_eq!(empty.status, 400);
    assert!(String::from_utf8_lossy(&empty.body).contains("rsh-error-v1"));

    // A 1 µs budget is below the modeled per-request overhead: 504.
    let strict = roundtrip(
        &srv.addr,
        "POST",
        "/decompress",
        &[("x-rsh-deadline-ms", "0.001")],
        &compress.body,
    );
    assert_eq!(strict.status, 504, "body: {}", String::from_utf8_lossy(&strict.body));
    assert_eq!(strict.header("x-rsh-outcome"), Some("deadline"));
    assert!(String::from_utf8_lossy(&strict.body).contains("\"reason\":\"deadline\""));

    srv.finish();
}

#[test]
fn serve_sheds_with_structured_429_when_the_queue_is_full() {
    // One worker, queue depth 1, zero virtual gap: the first request
    // takes the worker, the second fills the one queue slot, and every
    // later request finds the queue full at admission.
    let srv =
        Server::spawn(&["--max-requests", "4", "--workers", "1", "--queue", "1", "--gap-us", "0"]);
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 53) as u8).collect();

    for trace in ["it-s0", "it-s1"] {
        let ok = roundtrip(&srv.addr, "POST", "/compress", &[("x-rsh-trace-id", trace)], &payload);
        assert_eq!(ok.status, 200, "{trace} should be admitted");
        assert_eq!(ok.header("x-rsh-outcome"), Some("success"));
    }

    for i in 0..2 {
        let shed = roundtrip(&srv.addr, "POST", "/compress", &[], &payload);
        assert_eq!(shed.status, 429, "request {i} was not shed");
        assert_eq!(shed.header("x-rsh-outcome"), Some("shed"));
        let text = String::from_utf8_lossy(&shed.body).to_string();
        assert!(text.contains("\"schema\":\"rsh-error-v1\""), "shed body: {text}");
        assert!(text.contains("\"reason\":\"queue_full\""), "shed body: {text}");
    }

    srv.finish();
}
