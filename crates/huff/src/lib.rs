//! # huff — the public facade of the reduce-shuffle Huffman system
//!
//! Re-exports the user-facing API of the workspace:
//!
//! * [`huff_core`] — the encoder/decoder library (histogram, two-phase
//!   parallel codebook construction, reduce-shuffle encoding, canonical
//!   decoding, the `compress`/`decompress` archive);
//! * [`gpu_sim`] — the simulated-device substrate (device specs, launch
//!   API, cost model);
//! * [`huff_datasets`] — synthetic equivalents of the paper's evaluation
//!   datasets.
//!
//! ## Quickstart
//!
//! ```
//! use huff::prelude::*;
//!
//! // Some 16-bit quantization codes (any &[u16] with symbols < num_symbols).
//! let data: Vec<u16> = (0..50_000).map(|i| (i % 40) as u16).collect();
//!
//! // One-call compression with auto-tuned reduction factor.
//! let packed = compress(&data, &CompressOptions::new(256)).unwrap();
//! assert_eq!(decompress(&packed).unwrap(), data);
//!
//! // Or drive the staged pipeline on a simulated V100.
//! let gpu = Gpu::v100();
//! let (stream, book, report) =
//!     pipeline::run(&gpu, &data, 2, 256, 10, None, PipelineKind::ReduceShuffle).unwrap();
//! assert!(report.encode_gbps() > 0.0);
//! let roundtrip = huff::decode::chunked::decode(&stream, &book).unwrap();
//! assert_eq!(roundtrip, data);
//! ```

#![warn(missing_docs)]

pub use gpu_sim;
pub use huff_core;
pub use huff_datasets;
pub use sz_quant;

pub use gpu_sim::{DeviceSpec, Gpu, GridDim};
pub use huff_core::archive::{compress, decompress, decompress_with, verify, CompressOptions};
pub use huff_core::batch::{compress_batched, BatchOptions, BatchReport};
pub use huff_core::pipeline::{self, PipelineKind, PipelineReport};
pub use huff_core::serve::{ChaosConfig, Engine, EngineConfig, Outcome, Request, ServeReport};
pub use huff_core::{
    batch, codebook, decode, encode, entropy, frame, histogram, integrity, kernels, serve, sparse,
    tree, BreakingStrategy, CanonicalCodebook, ChunkedStream, Codeword, DecompressOptions,
    EncodedStream, HuffError, MergeConfig, Recovered, RecoveryMode, RecoveryReport, Result,
    Section, Verify,
};
pub use huff_datasets::PaperDataset;

/// The convenient single import.
pub mod prelude {
    pub use crate::{
        compress, decompress, decompress_with, pipeline, BreakingStrategy, CanonicalCodebook,
        ChunkedStream, CompressOptions, DecompressOptions, DeviceSpec, Gpu, HuffError, MergeConfig,
        PaperDataset, PipelineKind, RecoveryMode, RecoveryReport, Verify,
    };
}
