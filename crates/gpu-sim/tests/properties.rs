//! Property-based tests for the simulator's invariants.

use gpu_sim::{cost, Access, DeviceSpec, Gpu, GridDim, Traffic};
use proptest::prelude::*;

fn arb_traffic() -> impl Strategy<Value = Traffic> {
    (
        0u64..1 << 30,
        0u64..1 << 20,
        0u64..1 << 20,
        0u64..1 << 30,
        0u64..1 << 20,
        0u64..1 << 26,
        1.0f64..4.0,
        0u64..1 << 10,
    )
        .prop_map(|(rc, rs, rr, wc, ws, ops, div, syncs)| {
            let mut t = Traffic::new();
            t.read(Access::Coalesced, rc / 4, 4);
            t.read(Access::Strided, rs, 4);
            t.read(Access::Random, rr, 4);
            t.write(Access::Coalesced, wc / 4, 4);
            t.write(Access::Strided, ws, 4);
            t.ops(ops);
            t.diverge(div);
            for _ in 0..syncs.min(64) {
                t.grid_sync();
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cost is monotone: absorbing more traffic never reduces modeled time.
    #[test]
    fn cost_monotone_under_absorb(a in arb_traffic(), b in arb_traffic()) {
        let spec = DeviceSpec::v100();
        let ca = cost::estimate(&spec, &a, true).total;
        let mut ab = a;
        ab.absorb(&b);
        let cab = cost::estimate(&spec, &ab, true).total;
        prop_assert!(cab >= ca - 1e-15, "absorb decreased cost: {ca} -> {cab}");
    }

    /// Sectors are superadditive-exact: absorb(a, b) touches at most one
    /// sector more than a and b separately (coalesced rounding).
    #[test]
    fn sector_accounting_additive(a in arb_traffic(), b in arb_traffic()) {
        let sep = a.dram_sectors(32) + b.dram_sectors(32);
        let mut ab = a;
        ab.absorb(&b);
        let joint = ab.dram_sectors(32);
        prop_assert!(joint <= sep);
        prop_assert!(joint + 1 >= sep);
    }

    /// A faster device (higher bandwidth, more SMs) is never slower.
    #[test]
    fn v100_never_slower_than_rtx5000(t in arb_traffic()) {
        let v = cost::estimate(&DeviceSpec::v100(), &t, true);
        let r = cost::estimate(&DeviceSpec::rtx5000(), &t, true);
        // Launch latencies differ slightly; compare the overlapped terms.
        prop_assert!(v.memory <= r.memory + 1e-15);
        prop_assert!(v.compute <= r.compute + 1e-15);
    }

    /// Scan matches the serial reference for arbitrary inputs.
    #[test]
    fn scan_matches_reference(input in proptest::collection::vec(0u64..1 << 40, 0..3000)) {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, total) = gpu.launch("scan", GridDim::new(1, 32), |s| {
            gpu_sim::prefix::exclusive_scan(s, &input)
        });
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    /// par_merge equals sort of the concatenation.
    #[test]
    fn device_sort_sorts(mut keys in proptest::collection::vec(any::<u32>(), 0..2000)) {
        let gpu = Gpu::new(DeviceSpec::test_part());
        gpu.launch("sort", GridDim::new(1, 32), |s| {
            gpu_sim::sort::sort_keys(s, &mut keys);
        });
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Reductions agree with std.
    #[test]
    fn device_reduce_agrees(input in proptest::collection::vec(0u64..1 << 32, 0..2000)) {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (sum, max) = gpu.launch("reduce", GridDim::new(1, 32), |s| {
            let sum = gpu_sim::reduce::sum_u64(s, &input);
            let as_u32: Vec<u32> = input.iter().map(|&x| x as u32).collect();
            (sum, gpu_sim::reduce::max_u32(s, &as_u32))
        });
        prop_assert_eq!(sum, input.iter().sum::<u64>());
        prop_assert_eq!(max, input.iter().map(|&x| x as u32).max().unwrap_or(0));
    }

    /// Grid cover always covers.
    #[test]
    fn grid_cover_covers(n in 0usize..1 << 22, tpb in 1u32..1025) {
        let g = GridDim::cover(n, tpb);
        prop_assert!(g.total_threads() >= n);
        // Minimal: one fewer block would not cover (when n > 0).
        if n > 0 && g.blocks > 1 {
            prop_assert!(((g.blocks - 1) as usize) * (tpb as usize) < n);
        }
    }
}
