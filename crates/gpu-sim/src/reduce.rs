//! Device primitive: grid-wide reductions.
//!
//! Blockwise tree reduction followed by a gridwise combine — the structure
//! the paper's Table I lists for histogramming's final merge and for the
//! breaking-point backtrace ("another simple reduction ... about 300 us").

use crate::exec::KernelScope;
use crate::traffic::Access;
use rayon::prelude::*;

/// Sum of `input`, accounted as one blockwise + gridwise tree reduction.
pub fn sum_u64(scope: &mut KernelScope, input: &[u64]) -> u64 {
    let s: u64 = input.par_iter().sum();
    account(scope, input.len(), 8);
    s
}

/// Maximum of `input` (0 for empty input).
pub fn max_u32(scope: &mut KernelScope, input: &[u32]) -> u32 {
    let m = input.par_iter().copied().max().unwrap_or(0);
    account(scope, input.len(), 4);
    m
}

/// Count elements satisfying `pred` — used for the breaking-point backtrace
/// (how many merged codewords overflow the representative word).
pub fn count_where<T: Sync>(
    scope: &mut KernelScope,
    input: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> usize {
    let c = input.par_iter().filter(|x| pred(x)).count();
    account(scope, input.len(), std::mem::size_of::<T>() as u64);
    c
}

fn account(scope: &mut KernelScope, n: usize, elem_bytes: u64) {
    let t = scope.traffic();
    t.read(Access::Coalesced, n as u64, elem_bytes);
    t.ops(n as u64);
    // Tree reduction: log-depth combine of per-block partials; the partials
    // are tiny, charge one coalesced write per 256-thread block.
    let partials = (n / 256).max(1) as u64;
    t.write(Access::Coalesced, partials, elem_bytes);
    t.grid_sync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::exec::Gpu;
    use crate::grid::GridDim;

    fn with_scope<R>(f: impl FnOnce(&mut KernelScope) -> R) -> R {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("reduce_test", GridDim::new(1, 32), f)
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        assert_eq!(with_scope(|s| sum_u64(s, &v)), 10_000 * 9_999 / 2);
    }

    #[test]
    fn max_of_empty_is_zero() {
        assert_eq!(with_scope(|s| max_u32(s, &[])), 0);
    }

    #[test]
    fn max_finds_extreme() {
        assert_eq!(with_scope(|s| max_u32(s, &[3, 99, 7])), 99);
    }

    #[test]
    fn count_where_counts() {
        let v: Vec<u32> = (0..1000).collect();
        let c = with_scope(|s| count_where(s, &v, |&x| x % 10 == 0));
        assert_eq!(c, 100);
    }

    #[test]
    fn reduction_traffic_reads_whole_input() {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("r", GridDim::new(1, 32), |s| {
            let _ = sum_u64(s, &vec![1u64; 4096]);
        });
        let c = g.clock();
        assert_eq!(c.records()[0].traffic.read_coalesced, 4096 * 8);
    }
}
