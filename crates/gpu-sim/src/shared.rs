//! Per-block shared-memory model.
//!
//! Shared memory on a real GPU is a small programmable cache whose lifetime
//! is bound to the resident block (Section III-A of the paper). We model the
//! capacity constraint — allocations beyond the device limit are a
//! programming error the simulator surfaces immediately — while backing the
//! storage with ordinary host memory.

/// A block's shared-memory arena. Created fresh for each block by
/// [`crate::KernelScope::par_for_blocks`]; dropped when the block retires.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: usize,
}

impl SharedMem {
    /// An arena with `capacity` bytes (the device's per-block limit).
    pub fn new(capacity: usize) -> Self {
        SharedMem { capacity, used: 0 }
    }

    /// Allocate a zero-initialized array of `n` elements of `T` from the
    /// block's shared memory.
    ///
    /// # Panics
    /// Panics if the block's shared-memory budget would be exceeded — the
    /// same failure a real kernel launch would report.
    pub fn alloc<T: Default + Clone>(&mut self, n: usize) -> Vec<T> {
        let bytes = n * std::mem::size_of::<T>();
        assert!(
            self.used + bytes <= self.capacity,
            "shared memory overflow: {} + {} > {} bytes",
            self.used,
            bytes,
            self.capacity
        );
        self.used += bytes;
        vec![T::default(); n]
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many replicated copies of an `n`-element `T` table fit in the
    /// remaining budget. Used by the Gomez-Luna histogram kernel to pick its
    /// replication degree (more copies => fewer atomic conflicts).
    pub fn replication_degree<T>(&self, n: usize) -> usize {
        let bytes = n * std::mem::size_of::<T>();
        if bytes == 0 {
            return usize::MAX;
        }
        self.remaining() / bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_usage() {
        let mut s = SharedMem::new(1024);
        let v: Vec<u32> = s.alloc(100);
        assert_eq!(v.len(), 100);
        assert_eq!(s.used(), 400);
        assert_eq!(s.remaining(), 624);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn overflow_panics() {
        let mut s = SharedMem::new(64);
        let _: Vec<u64> = s.alloc(9); // 72 bytes > 64
    }

    #[test]
    fn exact_fit_is_fine() {
        let mut s = SharedMem::new(64);
        let _: Vec<u64> = s.alloc(8);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn replication_degree_for_histogram() {
        // 48 KiB block, 1024-bin u32 histogram => 12 replicated copies.
        let s = SharedMem::new(48 * 1024);
        assert_eq!(s.replication_degree::<u32>(1024), 12);
    }

    #[test]
    fn replication_degree_shrinks_after_alloc() {
        let mut s = SharedMem::new(48 * 1024);
        let _: Vec<u32> = s.alloc(8192); // 32 KiB
        assert_eq!(s.replication_degree::<u32>(1024), 4);
    }
}
