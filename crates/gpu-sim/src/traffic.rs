//! Memory-traffic ledger.
//!
//! Kernels report the memory operations they perform through a
//! [`Traffic`] ledger; the cost model in [`crate::cost`] turns the ledger
//! into DRAM transactions and modeled time. This is the heart of the
//! reproduction: the paper's argument is that the reduce/shuffle encoder
//! wins *because* it turns fragmented variable-length bit writes into
//! coalesced full-word traffic, so we account for exactly that distinction.

use serde::{Deserialize, Serialize};

/// How a batch of global-memory accesses maps onto DRAM sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// Consecutive threads touch consecutive addresses: whole sectors are
    /// fully utilized. This is the pattern the paper's SHUFFLE-merge and
    /// coalescing-copy stages achieve.
    Coalesced,
    /// Each access lands in its own sector (e.g. thread-per-chunk
    /// coarse-grained encoding where neighbouring threads write to far-apart
    /// chunk bases). One sector is charged per access regardless of the
    /// element size.
    Strided,
    /// Data-dependent scatter/gather (codebook lookups, tree walks). Charged
    /// like `Strided`; kept separate in the ledger for reporting.
    Random,
}

/// Accumulated memory operations of one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Traffic {
    /// Bytes read coalesced.
    pub read_coalesced: u64,
    /// Strided read operations (one sector each).
    pub read_strided_ops: u64,
    /// Random-gather read operations (one sector each).
    pub read_random_ops: u64,
    /// Bytes written coalesced.
    pub write_coalesced: u64,
    /// Strided write operations (one sector each).
    pub write_strided_ops: u64,
    /// Random-scatter write operations (one sector each).
    pub write_random_ops: u64,
    /// Global-memory atomic updates.
    pub global_atomics: u64,
    /// Expected serialized (conflicting) global atomics.
    pub global_atomic_conflicts: u64,
    /// Shared-memory atomic updates (cheap, but not free — this is why
    /// Gomez-Luna histogramming replicates per-block copies).
    pub shared_atomics: u64,
    /// Expected serialized shared-memory atomics.
    pub shared_atomic_conflicts: u64,
    /// Plain shared-memory bytes moved (bank conflicts folded into ops).
    pub shared_bytes: u64,
    /// Scalar instructions executed across all threads in the launch.
    pub thread_ops: u64,
    /// Worst-case warp-divergence multiplier for the compute term; 1.0 means
    /// fully converged warps.
    pub divergence_factor: f64,
    /// Dependent single-thread global accesses of a sequential region (each
    /// pays full memory latency; this is what makes a serial GPU codebook
    /// construction take ~144 ms for 8192 symbols).
    pub sequential_dependent_accesses: u64,
    /// Number of grid-wide synchronizations performed inside the kernel.
    pub grid_syncs: u64,
    /// Seek-index probe operations: u64-word reads of a succinct chunk
    /// index (rank/select lookups plus chunk-table prefix-scan words).
    /// Each lands in its own sector like a random gather, but is kept as
    /// a separate term so range-decode traffic is visible in traces.
    /// `serde(default)` keeps traces recorded before the term readable.
    #[serde(default)]
    pub index_probe_ops: u64,
}

impl Traffic {
    /// An empty ledger with converged warps.
    pub fn new() -> Self {
        Traffic { divergence_factor: 1.0, ..Default::default() }
    }

    /// Record a coalesced read of `n` elements of `elem_bytes` bytes.
    pub fn read(&mut self, pattern: Access, n: u64, elem_bytes: u64) {
        match pattern {
            Access::Coalesced => self.read_coalesced += n * elem_bytes,
            Access::Strided => self.read_strided_ops += n,
            Access::Random => self.read_random_ops += n,
        }
    }

    /// Record a write of `n` elements of `elem_bytes` bytes.
    pub fn write(&mut self, pattern: Access, n: u64, elem_bytes: u64) {
        match pattern {
            Access::Coalesced => self.write_coalesced += n * elem_bytes,
            Access::Strided => self.write_strided_ops += n,
            Access::Random => self.write_random_ops += n,
        }
    }

    /// Record `n` global atomics of which `conflicts` serialize.
    pub fn global_atomic(&mut self, n: u64, conflicts: u64) {
        self.global_atomics += n;
        self.global_atomic_conflicts += conflicts;
    }

    /// Record `n` global atomics to *consecutive addresses* (e.g. a block
    /// committing its privatized histogram replica bin-by-bin). The L2
    /// resolves these at sector granularity as a read-modify-write, so the
    /// ledger books coalesced read + write bytes instead of one sector per
    /// atomic; only `conflicts` (same-address collisions across blocks)
    /// serialize. This is what makes Gomez-Luna full privatization commit
    /// cheaper than a separate tree-reduce launch.
    pub fn global_atomic_coalesced(&mut self, n: u64, elem_bytes: u64, conflicts: u64) {
        self.read_coalesced += n * elem_bytes;
        self.write_coalesced += n * elem_bytes;
        self.global_atomic_conflicts += conflicts;
    }

    /// Record `n` shared-memory atomics of which `conflicts` serialize.
    pub fn shared_atomic(&mut self, n: u64, conflicts: u64) {
        self.shared_atomics += n;
        self.shared_atomic_conflicts += conflicts;
    }

    /// Record `bytes` of plain shared-memory movement.
    pub fn shared(&mut self, bytes: u64) {
        self.shared_bytes += bytes;
    }

    /// Record `n` scalar instructions across the launch.
    pub fn ops(&mut self, n: u64) {
        self.thread_ops += n;
    }

    /// Raise the divergence multiplier to at least `f`.
    pub fn diverge(&mut self, f: f64) {
        if f > self.divergence_factor {
            self.divergence_factor = f;
        }
    }

    /// Record a latency-bound sequential region of `accesses` dependent
    /// global-memory accesses.
    pub fn sequential(&mut self, accesses: u64) {
        self.sequential_dependent_accesses += accesses;
    }

    /// Record one grid-wide synchronization.
    pub fn grid_sync(&mut self) {
        self.grid_syncs += 1;
    }

    /// Record `n` seek-index probe words (u64 reads of the chunk index or
    /// chunk table while locating a byte range's covering chunks).
    pub fn index_probe(&mut self, n: u64) {
        self.index_probe_ops += n;
    }

    /// Merge another ledger into this one (used when kernels compose
    /// device primitives that account their own traffic).
    pub fn absorb(&mut self, other: &Traffic) {
        self.read_coalesced += other.read_coalesced;
        self.read_strided_ops += other.read_strided_ops;
        self.read_random_ops += other.read_random_ops;
        self.write_coalesced += other.write_coalesced;
        self.write_strided_ops += other.write_strided_ops;
        self.write_random_ops += other.write_random_ops;
        self.global_atomics += other.global_atomics;
        self.global_atomic_conflicts += other.global_atomic_conflicts;
        self.shared_atomics += other.shared_atomics;
        self.shared_atomic_conflicts += other.shared_atomic_conflicts;
        self.shared_bytes += other.shared_bytes;
        self.thread_ops += other.thread_ops;
        self.divergence_factor = self.divergence_factor.max(other.divergence_factor);
        self.sequential_dependent_accesses += other.sequential_dependent_accesses;
        self.grid_syncs += other.grid_syncs;
        self.index_probe_ops += other.index_probe_ops;
    }

    /// Total DRAM sectors touched, at `sector_bytes` granularity. Coalesced
    /// bytes are packed into full sectors; every strided/random op and every
    /// global atomic is charged one sector.
    pub fn dram_sectors(&self, sector_bytes: usize) -> u64 {
        let s = sector_bytes as u64;
        let coalesced = (self.read_coalesced + self.write_coalesced).div_ceil(s);
        let scattered = self.read_strided_ops
            + self.read_random_ops
            + self.write_strided_ops
            + self.write_random_ops
            + self.global_atomics
            + self.index_probe_ops;
        coalesced + scattered
    }

    /// Total bytes the kernel logically moved through DRAM (not sectors) —
    /// useful for effective-bandwidth reporting.
    pub fn logical_dram_bytes(&self) -> u64 {
        self.read_coalesced
            + self.write_coalesced
            + 4 * (self.read_strided_ops
                + self.read_random_ops
                + self.write_strided_ops
                + self.write_random_ops)
            + 8 * self.index_probe_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_bytes_pack_into_sectors() {
        let mut t = Traffic::new();
        t.read(Access::Coalesced, 100, 4); // 400 bytes
        assert_eq!(t.dram_sectors(32), 13); // ceil(400/32)
    }

    #[test]
    fn strided_ops_cost_a_sector_each() {
        let mut t = Traffic::new();
        t.write(Access::Strided, 100, 1); // 100 single-byte writes
        assert_eq!(t.dram_sectors(32), 100);
    }

    #[test]
    fn random_vs_coalesced_sector_ratio() {
        // The motivating asymmetry: 1024 x 4B coalesced = 128 sectors,
        // 1024 x 4B random = 1024 sectors (8x worse).
        let mut c = Traffic::new();
        c.read(Access::Coalesced, 1024, 4);
        let mut r = Traffic::new();
        r.read(Access::Random, 1024, 4);
        assert_eq!(r.dram_sectors(32) / c.dram_sectors(32), 8);
    }

    #[test]
    fn atomics_counted_as_sectors() {
        let mut t = Traffic::new();
        t.global_atomic(10, 3);
        assert_eq!(t.dram_sectors(32), 10);
        assert_eq!(t.global_atomic_conflicts, 3);
    }

    #[test]
    fn coalesced_atomics_bill_rmw_bytes_not_sectors() {
        // 1024 consecutive-address u32 atomics: billed as a 4 KiB RMW
        // (8 KiB of coalesced traffic = 256 sectors), not 1024 sectors.
        let mut t = Traffic::new();
        t.global_atomic_coalesced(1024, 4, 7);
        assert_eq!(t.read_coalesced, 4096);
        assert_eq!(t.write_coalesced, 4096);
        assert_eq!(t.global_atomics, 0);
        assert_eq!(t.global_atomic_conflicts, 7);
        assert_eq!(t.dram_sectors(32), 256);
        let mut scattered = Traffic::new();
        scattered.global_atomic(1024, 7);
        assert_eq!(scattered.dram_sectors(32), 1024);
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = Traffic::new();
        a.read(Access::Coalesced, 1, 32);
        a.ops(5);
        a.diverge(2.0);
        let mut b = Traffic::new();
        b.read(Access::Coalesced, 1, 32);
        b.ops(7);
        b.grid_sync();
        a.absorb(&b);
        assert_eq!(a.read_coalesced, 64);
        assert_eq!(a.thread_ops, 12);
        assert_eq!(a.grid_syncs, 1);
        assert!((a.divergence_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn divergence_is_max_not_sum() {
        let mut t = Traffic::new();
        t.diverge(2.0);
        t.diverge(1.5);
        assert!((t.divergence_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn index_probes_cost_a_sector_each_and_absorb() {
        let mut t = Traffic::new();
        t.index_probe(17);
        assert_eq!(t.dram_sectors(32), 17);
        assert_eq!(t.logical_dram_bytes(), 17 * 8);
        let mut sum = Traffic::new();
        sum.absorb(&t);
        sum.absorb(&t);
        assert_eq!(sum.index_probe_ops, 34);
    }

    #[test]
    fn logical_bytes_counts_scattered_as_words() {
        let mut t = Traffic::new();
        t.read(Access::Random, 10, 4);
        t.write(Access::Coalesced, 4, 8);
        assert_eq!(t.logical_dram_bytes(), 40 + 32);
    }
}
