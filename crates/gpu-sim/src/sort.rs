//! Device primitive: parallel sort — the Thrust stand-in.
//!
//! GenerateCL requires its input histogram sorted by ascending frequency
//! (Section IV-B1: "the histogram is sorted in ascending order using
//! Thrust. This operation is low-cost, as n is relatively small"). We sort
//! on the host with rayon and charge a 4-pass LSD radix sort's traffic.

use crate::exec::KernelScope;
use crate::traffic::Access;
use rayon::prelude::*;

/// Sort `(key, value)` pairs by ascending key, stably, accounting the
/// traffic of a 4-pass radix sort over `keys.len()` elements.
pub fn sort_pairs_by_key<K, V>(scope: &mut KernelScope, pairs: &mut [(K, V)])
where
    K: Ord + Send + Sync,
    V: Send,
{
    pairs.par_sort_by(|a, b| a.0.cmp(&b.0));
    account(scope, pairs.len(), std::mem::size_of::<(K, V)>() as u64);
}

/// Sort a key slice ascending.
pub fn sort_keys<K: Ord + Send>(scope: &mut KernelScope, keys: &mut [K]) {
    keys.par_sort_unstable();
    account(scope, keys.len(), std::mem::size_of::<K>() as u64);
}

fn account(scope: &mut KernelScope, n: usize, elem_bytes: u64) {
    const RADIX_PASSES: u64 = 4;
    let t = scope.traffic();
    t.read(Access::Coalesced, RADIX_PASSES * n as u64, elem_bytes);
    // Scatter phase of each pass is data-dependent but bucketed; charge half
    // coalesced, half strided.
    t.write(Access::Coalesced, RADIX_PASSES * n as u64 / 2, elem_bytes);
    t.write(Access::Strided, RADIX_PASSES * n as u64 / 2, elem_bytes);
    t.ops(RADIX_PASSES * 2 * n as u64);
    t.grid_sync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::exec::Gpu;
    use crate::grid::GridDim;

    fn with_scope<R>(f: impl FnOnce(&mut KernelScope) -> R) -> R {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("sort_test", GridDim::new(1, 32), f)
    }

    #[test]
    fn sorts_pairs_ascending_by_key() {
        let mut p = vec![(5u64, 'a'), (1, 'b'), (3, 'c')];
        with_scope(|s| sort_pairs_by_key(s, &mut p));
        assert_eq!(p, vec![(1, 'b'), (3, 'c'), (5, 'a')]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let mut p = vec![(1u32, 0usize), (1, 1), (0, 2), (1, 3)];
        with_scope(|s| sort_pairs_by_key(s, &mut p));
        assert_eq!(p, vec![(0, 2), (1, 0), (1, 1), (1, 3)]);
    }

    #[test]
    fn sorts_keys() {
        let mut k = vec![9u16, 2, 7, 2];
        with_scope(|s| sort_keys(s, &mut k));
        assert_eq!(k, vec![2, 2, 7, 9]);
    }

    #[test]
    fn sort_is_cheap_relative_to_data_size() {
        // Paper: sorting the n-symbol histogram is low-cost vs the input.
        let g = Gpu::new(DeviceSpec::v100());
        g.launch("sort", GridDim::new(1, 32), |s| {
            let mut pairs: Vec<(u64, u32)> = (0..1024u64).rev().map(|i| (i, i as u32)).collect();
            sort_pairs_by_key(s, &mut pairs);
        });
        assert!(g.elapsed() < 100.0e-6, "sort of 1024 keys modeled {} s", g.elapsed());
    }
}
