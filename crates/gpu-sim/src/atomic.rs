//! Device-atomic helpers and contention estimation.
//!
//! Parallel regions coordinate through std atomics (which is what the host
//! execution actually uses); this module adds the pieces CUDA has that std
//! lacks plus heuristics for estimating how many of a batch of atomic
//! updates serialize — the quantity the cost model charges for.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// `atomicMax` on a `u32` cell; returns the previous value.
pub fn atomic_max_u32(cell: &AtomicU32, val: u32) -> u32 {
    cell.fetch_max(val, Ordering::Relaxed)
}

/// `atomicMin` on a `usize` cell; returns the previous value.
pub fn atomic_min_usize(cell: &AtomicUsize, val: usize) -> usize {
    cell.fetch_min(val, Ordering::Relaxed)
}

/// `atomicAdd` on a `u64` cell; returns the previous value.
pub fn atomic_add_u64(cell: &AtomicU64, val: u64) -> u64 {
    cell.fetch_add(val, Ordering::Relaxed)
}

/// View a mutable `u32` slice as atomic cells so a parallel region can
/// scatter-update it. Safe: `AtomicU32` has the same layout as `u32` and the
/// borrow is exclusive for the view's lifetime.
pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
    unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
}

/// View a mutable `u64` slice as atomic cells.
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
}

/// Expected number of serialized updates when `updates` atomic operations
/// land on `addresses` distinct locations with the given skew.
///
/// `skew` is the fraction of updates hitting the single hottest address
/// (1/addresses for uniform data, approaching 1.0 for degenerate
/// histograms). Updates to the hottest address serialize fully; the
/// remainder are assumed spread widely enough to conflict only within a
/// warp, costing `warp_collision_rate` of them.
pub fn expected_conflicts(updates: u64, addresses: u64, skew: f64) -> u64 {
    if updates == 0 || addresses == 0 {
        return 0;
    }
    let skew = skew.clamp(0.0, 1.0);
    let hot = (updates as f64 * skew) as u64;
    let rest = updates - hot;
    // Birthday-style within-warp collision rate for the non-hot updates: a
    // warp of 32 lanes over `addresses` bins.
    let warp_collision_rate = (31.0 / addresses as f64).min(1.0);
    hot + (rest as f64 * warp_collision_rate) as u64
}

/// Fraction of updates hitting the hottest bin, given a histogram. Feeds
/// [`expected_conflicts`]: the paper's Gomez-Luna histogram replicates
/// per-block copies precisely to dilute this skew.
pub fn histogram_skew(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = freqs.iter().copied().max().unwrap_or(0);
    max as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn atomic_views_share_storage() {
        let mut v = vec![0u32; 16];
        {
            let a = as_atomic_u32(&mut v);
            (0..1000usize).into_par_iter().for_each(|i| {
                a[i % 16].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(v.iter().sum::<u32>(), 1000);
        assert!(v.iter().all(|&x| x == 62 || x == 63));
    }

    #[test]
    fn atomic_u64_view() {
        let mut v = vec![0u64; 4];
        {
            let a = as_atomic_u64(&mut v);
            a[2].fetch_add(7, Ordering::Relaxed);
        }
        assert_eq!(v[2], 7);
    }

    #[test]
    fn min_max_helpers() {
        let c = AtomicU32::new(5);
        atomic_max_u32(&c, 9);
        assert_eq!(c.load(Ordering::Relaxed), 9);
        let m = AtomicUsize::new(100);
        atomic_min_usize(&m, 7);
        assert_eq!(m.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn uniform_data_has_few_conflicts() {
        // 1M updates over 65536 bins, uniform: warp collisions only.
        let c = expected_conflicts(1_000_000, 65536, 1.0 / 65536.0);
        assert!(c < 10_000, "{c}");
    }

    #[test]
    fn degenerate_data_serializes() {
        // Everything in one bin: all updates conflict.
        let c = expected_conflicts(1_000_000, 256, 1.0);
        assert_eq!(c, 1_000_000);
    }

    #[test]
    fn zero_updates_zero_conflicts() {
        assert_eq!(expected_conflicts(0, 10, 0.5), 0);
        assert_eq!(expected_conflicts(10, 0, 0.5), 0);
    }

    #[test]
    fn histogram_skew_examples() {
        assert!((histogram_skew(&[1, 1, 1, 1]) - 0.25).abs() < 1e-12);
        assert!((histogram_skew(&[97, 1, 1, 1]) - 0.97).abs() < 1e-12);
        assert_eq!(histogram_skew(&[]), 0.0);
        assert_eq!(histogram_skew(&[0, 0]), 0.0);
    }
}
