//! Kernel metadata for the parallelism taxonomy (the paper's Table I).
//!
//! Every kernel in the Huffman pipeline registers a [`KernelInfo`]
//! describing its granularity, data-thread mapping, coordination techniques
//! and synchronization scope; the `table1` regenerator prints the registry.

use serde::{Deserialize, Serialize};

/// Parallelization granularity of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Only 1 thread is used due to data dependency.
    Sequential,
    /// Data is explicitly chunked.
    CoarseGrained,
    /// Data-thread mapping with little or no warp divergence.
    FineGrained,
}

impl Granularity {
    /// The label used in Table I.
    pub fn label(&self) -> &'static str {
        match self {
            Granularity::Sequential => "sequential",
            Granularity::CoarseGrained => "coarse-grained",
            Granularity::FineGrained => "fine-grained",
        }
    }
}

/// How data elements map to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mapping {
    /// Several data elements per thread.
    ManyToOne,
    /// One data element per thread.
    OneToOne,
    /// No direct data-thread mapping.
    NotApplicable,
}

impl Mapping {
    /// The label used in Table I.
    pub fn label(&self) -> &'static str {
        match self {
            Mapping::ManyToOne => "many-to-one",
            Mapping::OneToOne => "one-to-one",
            Mapping::NotApplicable => "-",
        }
    }
}

/// Synchronization boundary a kernel relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncScope {
    /// Intra-block barrier (`__syncthreads`).
    Block,
    /// Cooperative-Groups grid-wide synchronization.
    Grid,
    /// Device-wide synchronization (kernel boundary).
    Device,
}

impl SyncScope {
    /// The label used in Table I.
    pub fn label(&self) -> &'static str {
        match self {
            SyncScope::Block => "sync block",
            SyncScope::Grid => "sync grid",
            SyncScope::Device => "sync device",
        }
    }
}

/// One row of the taxonomy table.
#[derive(Debug, Clone, Serialize)]
pub struct KernelInfo {
    /// Pipeline stage ("histogram", "build codebook", "canonize",
    /// "Huffman enc.").
    pub stage: &'static str,
    /// Kernel (sub-procedure) name.
    pub kernel: &'static str,
    /// Parallelization granularities the kernel combines.
    pub granularity: &'static [Granularity],
    /// Data-thread mapping.
    pub mapping: Mapping,
    /// Coordination techniques: "atomic write", "reduction", "prefix sum".
    pub techniques: &'static [&'static str],
    /// Synchronization scope the kernel relies on.
    pub sync: SyncScope,
}

impl KernelInfo {
    /// Render as a fixed-width table row.
    pub fn row(&self) -> String {
        let gran = self.granularity.iter().map(|g| g.label()).collect::<Vec<_>>().join("+");
        format!(
            "{:<14} {:<24} {:<28} {:<12} {:<28} {}",
            self.stage,
            self.kernel,
            gran,
            self.mapping.label(),
            self.techniques.join(", "),
            self.sync.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Granularity::FineGrained.label(), "fine-grained");
        assert_eq!(Mapping::OneToOne.label(), "one-to-one");
        assert_eq!(SyncScope::Device.label(), "sync device");
    }

    #[test]
    fn row_contains_fields() {
        let info = KernelInfo {
            stage: "histogram",
            kernel: "blockwise reduction",
            granularity: &[Granularity::FineGrained],
            mapping: Mapping::ManyToOne,
            techniques: &["atomic write", "reduction"],
            sync: SyncScope::Block,
        };
        let r = info.row();
        assert!(r.contains("histogram"));
        assert!(r.contains("fine-grained"));
        assert!(r.contains("atomic write"));
        assert!(r.contains("sync block"));
    }
}
