//! # gpu-sim — a bulk-synchronous SIMT execution model with an analytic cost model
//!
//! This crate is the hardware substrate for the reduce-shuffle Huffman
//! reproduction. The paper ("Revisiting Huffman Coding: Toward Extreme
//! Performance on Modern GPU Architectures", IPDPS'21) runs CUDA kernels on
//! a V100 and an RTX 5000; here, kernels are expressed as sequences of
//! grid-wide parallel regions (the Cooperative-Groups persistent-kernel
//! style the paper uses) and executed with real data parallelism on the
//! host, while a [`traffic::Traffic`] ledger records the memory behaviour —
//! coalesced vs. strided vs. random, atomics and their conflicts, grid
//! syncs, sequential latency-bound regions — and [`cost::estimate`] turns
//! the ledger into modeled device time from spec-sheet numbers alone.
//! Each launch leaves a [`KernelRecord`] trace event on the device's
//! [`SimClock`]; [`trace`] exports those events as structured JSON or a
//! Chrome `trace_event` timeline.
//!
//! What is *real*: all data transformations (histograms, codebooks,
//! bitstreams) are bit-exact computations. What is *modeled*: the time they
//! would take on the device, which is the quantity every table in the paper
//! reports.
//!
//! ```
//! use gpu_sim::{Gpu, GridDim, Access};
//!
//! let gpu = Gpu::v100();
//! let data: Vec<u64> = vec![1; 1 << 16];
//! let total = gpu.launch("sum", GridDim::cover(data.len(), 256), |scope| {
//!     scope.traffic().read(Access::Coalesced, data.len() as u64, 8);
//!     gpu_sim::reduce::sum_u64(scope, &data)
//! });
//! assert_eq!(total, 1 << 16);
//! assert!(gpu.elapsed() > 0.0);
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod atomic;
pub mod clock;
pub mod cost;
pub mod device;
pub mod exec;
pub mod grid;
pub mod info;
pub mod prefix;
pub mod reduce;
pub mod roofline;
pub mod shared;
pub mod sort;
pub mod stream;
pub mod trace;
pub mod traffic;

pub use clock::{KernelRecord, SimClock};
pub use cost::{gbps, throughput, CostBreakdown};
pub use device::DeviceSpec;
pub use exec::{Gpu, KernelScope};
pub use grid::{GridDim, ThreadIdx};
pub use info::{Granularity, KernelInfo, Mapping, SyncScope};
pub use roofline::{Bound, Counters};
pub use shared::SharedMem;
pub use stream::{EventId, StreamSchedule, Timeline};
pub use traffic::{Access, Traffic};
