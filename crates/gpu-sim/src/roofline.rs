//! Hardware counters and roofline classification for recorded launches.
//!
//! The tracer ([`crate::clock`]) records *what a kernel did* (its
//! [`crate::Traffic`] ledger) and *what it cost* (the
//! [`crate::CostBreakdown`]); this
//! module interprets those numbers the way a profiler's hardware counters
//! would. [`Counters::from_record`] derives achieved DRAM throughput,
//! fraction-of-peak, occupancy, divergence, and a stall-share breakdown
//! from the existing cost terms — no new measurement, just algebra over
//! the model — and classifies each launch against the device roofline.
//!
//! ## The derivation
//!
//! The cost model (DESIGN.md § "The cost model, term by term") charges
//!
//! ```text
//! total = launch + grid_syncs + sequential_latency + atomics
//!         + max(memory, compute, shared)
//! ```
//!
//! where `memory` bills *sector* traffic (`dram_sectors × sector_bytes`)
//! against the effective bandwidth, possibly inflated by the multi-stream
//! contention factor `f` ([`crate::stream`]). The counters reverse that
//! charge:
//!
//! * **achieved bytes/s** = `logical_dram_bytes / total` — the payload
//!   the kernel actually moved, over its full modeled time. Because a
//!   sector (32 B) is always at least as large as the logical bytes it
//!   carries, and `total ≥ memory`, achieved throughput can never exceed
//!   the effective bandwidth: [`Counters::efficiency`] lands in `[0, 1]`
//!   without clamping.
//! * **stall shares** partition `total` exactly: `launch_share +
//!   sync_share + latency_share + atomic_share + contention_share +
//!   throughput_share = 1`. The contention share is the *excess* of the
//!   contended max-term over what the same kernel would cost alone
//!   (`f = 1` ⇒ zero).
//! * **[`Bound`]** is the largest of the three groups: throughput
//!   (memory/compute roofline), fixed latency (launch + syncs +
//!   pointer-chasing), contention (bandwidth sharing + atomic
//!   serialization).
//!
//! ```
//! use gpu_sim::{Access, DeviceSpec, Gpu, GridDim, roofline::Bound};
//!
//! let gpu = Gpu::v100();
//! let n: u64 = 1 << 22;
//! gpu.launch("copy", GridDim::cover(n as usize, 256), |scope| {
//!     scope.traffic().read(Access::Coalesced, n, 4);
//!     scope.traffic().write(Access::Coalesced, n, 4);
//! });
//! let clock = gpu.clock();
//! let c = clock.records()[0].counters(&DeviceSpec::v100());
//! assert_eq!(c.bound, Bound::Memory);
//! assert!(c.efficiency > 0.9); // a streaming copy sits on the roofline
//! ```

use crate::clock::KernelRecord;
use crate::device::DeviceSpec;
use serde::json::{Map, Value};
use serde::Serialize;

/// What limits a launch: the roofline classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// DRAM throughput is the charged term — the kernel rides the
    /// bandwidth roofline (the paper's claim for the merge kernels).
    Memory,
    /// Arithmetic (or shared-memory) throughput is the charged term.
    Compute,
    /// Fixed latency dominates: launch ramp, grid-wide syncs, or
    /// serialized dependent accesses (the bit-serial decoder baseline).
    Latency,
    /// Time lost to sharing: bandwidth contention from overlapping
    /// streams plus serialized atomic conflicts.
    Contention,
}

impl Bound {
    /// Stable lower-case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Memory => "memory",
            Bound::Compute => "compute",
            Bound::Latency => "latency",
            Bound::Contention => "contention",
        }
    }

    /// Inverse of [`Bound::name`]: parse a stable lower-case name back into
    /// a classification. Returns `None` for unknown strings so baseline
    /// readers (the regression gate keys rows by Bound class) can fail open.
    pub fn parse(name: &str) -> Option<Bound> {
        match name {
            "memory" => Some(Bound::Memory),
            "compute" => Some(Bound::Compute),
            "latency" => Some(Bound::Latency),
            "contention" => Some(Bound::Contention),
            _ => None,
        }
    }
}

/// Derived hardware counters for one recorded launch.
///
/// All `*_share` fields are fractions of the kernel's `cost.total` and
/// partition it exactly (they sum to 1 for any kernel with positive
/// modeled time).
#[derive(Debug, Clone, Copy)]
pub struct Counters {
    /// Logical DRAM payload bytes (what the algorithm asked for, not the
    /// sector traffic the device billed).
    pub logical_bytes: u64,
    /// `logical_bytes / total` — achieved DRAM throughput in bytes/s.
    pub achieved_bps: f64,
    /// `achieved_bps / peak_bandwidth` — fraction of the device's
    /// headline bandwidth. Caps at `bandwidth_efficiency` (0.83 on the
    /// modeled V100) even for a perfect streaming kernel.
    pub peak_fraction: f64,
    /// `achieved_bps / effective_bandwidth` — fraction of the
    /// *achievable* bandwidth; the roofline efficiency score in `[0, 1]`.
    pub efficiency: f64,
    /// `min(1, blocks / sm_count)` — fraction of the device the grid can
    /// occupy (same formula the stream scheduler uses for contention).
    pub occupancy: f64,
    /// `1 − 1/divergence_factor` — fraction of issued lanes wasted to
    /// branch divergence (0 for uniform control flow).
    pub divergence_fraction: f64,
    /// Kernel launch ramp as a fraction of total.
    pub launch_share: f64,
    /// Grid-wide sync latency as a fraction of total.
    pub sync_share: f64,
    /// Serialized dependent-access latency as a fraction of total.
    pub latency_share: f64,
    /// Serialized atomic conflicts as a fraction of total.
    pub atomic_share: f64,
    /// Excess of the contended throughput term over the uncontended one
    /// (`f > 1` only when streams overlapped) as a fraction of total.
    pub contention_share: f64,
    /// The uncontended `max(memory, compute, shared)` term as a fraction
    /// of total — the roofline-limited part of the kernel.
    pub throughput_share: f64,
    /// Roofline classification of the launch.
    pub bound: Bound,
}

impl Counters {
    /// Derive counters for one recorded launch on `spec`.
    ///
    /// `spec` must be the device the kernel ran on — the record itself
    /// does not carry the spec, only the costs charged under it.
    pub fn from_record(rec: &KernelRecord, spec: &DeviceSpec) -> Counters {
        let c = &rec.cost;
        let total = c.total;
        let logical_bytes = rec.traffic.logical_dram_bytes();
        let share = |t: f64| if total > 0.0 { t / total } else { 0.0 };

        // `c.memory` is the *contended* figure (the stream scheduler
        // rewrites it in place); divide the factor back out to find what
        // the kernel would cost alone, and charge the difference of the
        // max-terms to contention.
        let f = rec.contention.max(1.0);
        let charged = c.memory.max(c.compute).max(c.shared);
        let uncontended = (c.memory / f).max(c.compute).max(c.shared);
        let contention_excess = charged - uncontended;

        let achieved_bps = if total > 0.0 { logical_bytes as f64 / total } else { 0.0 };
        let divergence = rec.traffic.divergence_factor.max(1.0);

        let launch_share = share(c.launch);
        let sync_share = share(c.grid_syncs);
        let latency_share = share(c.sequential_latency);
        let atomic_share = share(c.atomics);
        let contention_share = share(contention_excess);
        let throughput_share = share(uncontended);

        let fixed = launch_share + sync_share + latency_share;
        let shared_time = atomic_share + contention_share;
        let bound = if throughput_share >= fixed && throughput_share >= shared_time {
            // Memory vs compute: which uncontended term is charged.
            if c.memory / f >= c.compute && c.memory / f >= c.shared {
                Bound::Memory
            } else {
                Bound::Compute
            }
        } else if fixed >= shared_time {
            Bound::Latency
        } else {
            Bound::Contention
        };

        Counters {
            logical_bytes,
            achieved_bps,
            peak_fraction: achieved_bps / spec.peak_bandwidth,
            efficiency: achieved_bps / spec.effective_bandwidth(),
            occupancy: (f64::from(rec.blocks) / f64::from(spec.sm_count)).min(1.0),
            divergence_fraction: 1.0 - 1.0 / divergence,
            launch_share,
            sync_share,
            latency_share,
            atomic_share,
            contention_share,
            throughput_share,
            bound,
        }
    }

    /// Sum of all stall shares — exactly 1 for any kernel with positive
    /// modeled time (the shares partition `cost.total`).
    pub fn share_sum(&self) -> f64 {
        self.launch_share
            + self.sync_share
            + self.latency_share
            + self.atomic_share
            + self.contention_share
            + self.throughput_share
    }
}

impl Serialize for Counters {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("logical_bytes".into(), Value::Int(self.logical_bytes as i128));
        m.insert("achieved_gbps".into(), Value::Float(self.achieved_bps / 1e9));
        m.insert("peak_fraction".into(), Value::Float(self.peak_fraction));
        m.insert("efficiency".into(), Value::Float(self.efficiency));
        m.insert("occupancy".into(), Value::Float(self.occupancy));
        m.insert("divergence_fraction".into(), Value::Float(self.divergence_fraction));
        m.insert("launch_share".into(), Value::Float(self.launch_share));
        m.insert("sync_share".into(), Value::Float(self.sync_share));
        m.insert("latency_share".into(), Value::Float(self.latency_share));
        m.insert("atomic_share".into(), Value::Float(self.atomic_share));
        m.insert("contention_share".into(), Value::Float(self.contention_share));
        m.insert("throughput_share".into(), Value::Float(self.throughput_share));
        m.insert("bound".into(), self.bound.name().into());
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::cost;
    use crate::grid::GridDim;

    #[test]
    fn bound_parse_roundtrips_names() {
        for b in [Bound::Memory, Bound::Compute, Bound::Latency, Bound::Contention] {
            assert_eq!(Bound::parse(b.name()), Some(b));
        }
        assert_eq!(Bound::parse("warp"), None);
    }
    use crate::traffic::Traffic;

    fn record_for(traffic: Traffic, grid: GridDim) -> KernelRecord {
        let spec = DeviceSpec::test_part();
        let cost = cost::estimate(&spec, &traffic, true);
        let mut clock = SimClock::new();
        clock.record("k", grid, cost, traffic);
        clock.records()[0].clone()
    }

    #[test]
    fn coalesced_streaming_kernel_is_memory_bound_and_efficient() {
        let mut t = Traffic::new();
        t.read(crate::Access::Coalesced, 1 << 22, 4);
        t.write(crate::Access::Coalesced, 1 << 22, 4);
        let rec = record_for(t, GridDim::new(64, 256));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Memory);
        assert!(c.efficiency > 0.9, "streaming copy should ride the roofline: {}", c.efficiency);
        assert!(c.efficiency <= 1.0 + 1e-12);
        assert!((c.share_sum() - 1.0).abs() < 1e-9);
        assert!((c.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_kernel_wastes_sectors_but_stays_memory_bound() {
        let mut t = Traffic::new();
        t.read(crate::Access::Strided, 1 << 22, 4);
        let rec = record_for(t, GridDim::new(64, 256));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Memory);
        // 4 logical bytes per 32-byte sector: efficiency ~ 1/8.
        assert!(c.efficiency < 0.2, "strided access should look inefficient: {}", c.efficiency);
        assert!((c.share_sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_chaser_is_latency_bound() {
        let mut t = Traffic::new();
        t.sequential(1 << 20);
        t.read(crate::Access::Coalesced, 1 << 20, 4);
        let rec = record_for(t, GridDim::new(1, 1));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Latency);
        assert!(c.latency_share > 0.9);
        assert!(c.occupancy < 1.0);
    }

    #[test]
    fn tiny_kernel_is_launch_latency_bound() {
        let mut t = Traffic::new();
        t.read(crate::Access::Coalesced, 16, 4);
        let rec = record_for(t, GridDim::new(1, 32));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Latency);
        assert!(c.launch_share > 0.9);
    }

    #[test]
    fn contended_record_reports_contention_excess() {
        let mut t = Traffic::new();
        t.read(crate::Access::Coalesced, 1 << 24, 4);
        let mut rec = record_for(t, GridDim::new(64, 256));
        // Replay what the stream scheduler does under a resident peer.
        let f = 4.0;
        rec.cost.memory *= f;
        rec.cost.total = rec.cost.launch
            + rec.cost.grid_syncs
            + rec.cost.sequential_latency
            + rec.cost.atomics
            + rec.cost.memory.max(rec.cost.compute).max(rec.cost.shared);
        rec.contention = f;
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Contention);
        assert!(c.contention_share > c.throughput_share);
        assert!((c.share_sum() - 1.0).abs() < 1e-9);
        // The contended kernel moves the same bytes in ~f× the time.
        assert!(c.efficiency < 0.3);
    }

    #[test]
    fn compute_heavy_kernel_is_compute_bound() {
        let mut t = Traffic::new();
        t.read(crate::Access::Coalesced, 1 << 10, 4);
        t.ops(1 << 28);
        t.diverge(2.0);
        let rec = record_for(t, GridDim::new(64, 256));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.bound, Bound::Compute);
        assert!((c.divergence_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counters_json_has_all_fields() {
        let mut t = Traffic::new();
        t.read(crate::Access::Coalesced, 1 << 20, 4);
        let rec = record_for(t, GridDim::new(8, 128));
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        let json = c.to_json();
        let obj = json.as_object().expect("object");
        for key in [
            "logical_bytes",
            "achieved_gbps",
            "peak_fraction",
            "efficiency",
            "occupancy",
            "divergence_fraction",
            "launch_share",
            "sync_share",
            "latency_share",
            "atomic_share",
            "contention_share",
            "throughput_share",
            "bound",
        ] {
            assert!(obj.get(key).is_some(), "missing {key}");
        }
        assert_eq!(obj.get("bound").unwrap().as_str(), Some("memory"));
    }

    #[test]
    fn zero_cost_record_degrades_gracefully() {
        let rec = record_for(Traffic::new(), GridDim::new(1, 1));
        // include_launch=true gives a nonzero ramp; strip it to force the
        // degenerate case.
        let mut rec = rec;
        rec.cost = cost::estimate(&DeviceSpec::test_part(), &Traffic::new(), false);
        let c = Counters::from_record(&rec, &DeviceSpec::test_part());
        assert_eq!(c.achieved_bps, 0.0);
        assert_eq!(c.share_sum(), 0.0);
    }
}
