//! The bulk-synchronous SIMT executor.
//!
//! A [`Gpu`] launches kernels over a [`GridDim`]. A kernel body receives a
//! [`KernelScope`] and expresses its work as a sequence of grid-wide
//! parallel regions separated by implicit grid synchronizations — exactly
//! the Cooperative-Groups structure the paper's kernels use (one persistent
//! kernel, many `grid.sync()` points) rather than one kernel launch per
//! region. Parallel regions execute with real data-parallelism on the host
//! (rayon); the scope's [`Traffic`] ledger drives the analytic cost model,
//! and the modeled time lands on the device's [`SimClock`].

use crate::clock::SimClock;
use crate::cost::{self, CostBreakdown};
use crate::device::DeviceSpec;
use crate::grid::GridDim;
use crate::shared::SharedMem;
use crate::traffic::Traffic;
use parking_lot::Mutex;
use rayon::prelude::*;

/// A simulated GPU: a device spec plus an accumulating simulated clock.
///
/// `Gpu` is `Sync`; the clock is internally locked so pipelines can share a
/// device across host threads.
#[derive(Debug)]
pub struct Gpu {
    spec: DeviceSpec,
    clock: Mutex<SimClock>,
}

impl Gpu {
    /// A device with the given spec and an empty clock.
    pub fn new(spec: DeviceSpec) -> Self {
        Gpu { spec, clock: Mutex::new(SimClock::new()) }
    }

    /// A V100 device (the paper's primary evaluation part).
    pub fn v100() -> Self {
        Gpu::new(DeviceSpec::v100())
    }

    /// An RTX 5000 device.
    pub fn rtx5000() -> Self {
        Gpu::new(DeviceSpec::rtx5000())
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Launch a kernel: run `body` with a fresh [`KernelScope`], then charge
    /// the modeled time (including one kernel ramp) to the clock. Returns
    /// the body's result.
    pub fn launch<R>(
        &self,
        name: &str,
        grid: GridDim,
        body: impl FnOnce(&mut KernelScope) -> R,
    ) -> R {
        assert!(
            grid.threads_per_block <= self.spec.max_threads_per_block,
            "kernel `{name}`: {} threads/block exceeds device limit {}",
            grid.threads_per_block,
            self.spec.max_threads_per_block
        );
        let mut scope = KernelScope { spec: &self.spec, grid, traffic: Traffic::new() };
        let out = body(&mut scope);
        let breakdown = cost::estimate(&self.spec, &scope.traffic, true);
        self.clock.lock().record(name, grid, breakdown, scope.traffic);
        out
    }

    /// Like [`Gpu::launch`] but also returns the modeled cost breakdown.
    pub fn launch_timed<R>(
        &self,
        name: &str,
        grid: GridDim,
        body: impl FnOnce(&mut KernelScope) -> R,
    ) -> (R, CostBreakdown) {
        let out = self.launch(name, grid, body);
        let cost = self.clock.lock().records().last().expect("just recorded").cost;
        (out, cost)
    }

    /// Total modeled seconds accumulated so far.
    pub fn elapsed(&self) -> f64 {
        self.clock.lock().elapsed()
    }

    /// Number of kernel launches recorded so far (cheaper than snapshotting
    /// the clock; used to delimit pipeline stages in the trace).
    pub fn launches(&self) -> usize {
        self.clock.lock().launches()
    }

    /// Modeled seconds of kernels whose name contains `pat`.
    pub fn elapsed_matching(&self, pat: &str) -> f64 {
        self.clock.lock().elapsed_matching(pat)
    }

    /// Snapshot the clock.
    pub fn clock(&self) -> SimClock {
        self.clock.lock().clone()
    }

    /// Reset the clock to zero.
    pub fn reset_clock(&self) {
        self.clock.lock().reset();
    }

    /// Stamp every subsequent launch's record with this trace id (the
    /// owning request's; see [`SimClock::set_trace`]).
    pub fn set_trace(&self, trace: &str) {
        self.clock.lock().set_trace(trace);
    }
}

/// Handle given to a kernel body; provides parallel regions and the traffic
/// ledger. Each parallel region ends with an implicit grid sync.
pub struct KernelScope<'a> {
    spec: &'a DeviceSpec,
    grid: GridDim,
    traffic: Traffic,
}

impl<'a> KernelScope<'a> {
    /// The launch configuration.
    pub fn grid(&self) -> GridDim {
        self.grid
    }

    /// The device spec (for warp size, shared-memory limits, ...).
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// Mutable access to the kernel's traffic ledger, for bulk accounting
    /// (`scope.traffic().read(Access::Coalesced, n, 4)` etc.).
    pub fn traffic(&mut self) -> &mut Traffic {
        &mut self.traffic
    }

    /// Grid-wide fine-grained parallel region: one logical thread per item
    /// in `0..n`, `ops_per_item` scalar instructions each, implicit grid
    /// sync at the end. Items run with real parallelism; the closure must
    /// coordinate any shared writes itself (atomics or disjoint indices).
    pub fn par_for<F>(&mut self, n: usize, ops_per_item: u64, f: F)
    where
        F: Fn(usize) + Sync,
    {
        (0..n).into_par_iter().for_each(f);
        self.traffic.ops(n as u64 * ops_per_item);
        self.traffic.grid_sync();
    }

    /// Like [`KernelScope::par_for`] but sequential on the host — for tiny
    /// regions (a few hundred items) where rayon's scheduling overhead
    /// dwarfs the work. Cost accounting is identical to `par_for`: the
    /// modeled device still runs the region in parallel.
    pub fn par_for_small<F>(&mut self, n: usize, ops_per_item: u64, mut f: F)
    where
        F: FnMut(usize),
    {
        for i in 0..n {
            f(i);
        }
        self.traffic.ops(n as u64 * ops_per_item);
        self.traffic.grid_sync();
    }

    /// Grid-wide parallel region that partitions `data` into `chunk`-sized
    /// pieces, one block of threads per piece. The closure gets the chunk
    /// index and a mutable view of its piece — the common coarse-grained
    /// data-thread mapping.
    pub fn par_for_chunks<T, F>(&mut self, data: &mut [T], chunk: usize, ops_per_item: u64, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0);
        let n = data.len();
        data.par_chunks_mut(chunk).enumerate().for_each(|(i, c)| f(i, c));
        self.traffic.ops(n as u64 * ops_per_item);
        self.traffic.grid_sync();
    }

    /// Block-level parallel region: every block in the grid runs `f` with
    /// its block index and a fresh shared-memory arena sized to the device
    /// limit. Blocks run with real parallelism; within a block the closure
    /// is sequential (it models its intra-block threads itself and accounts
    /// shared-memory traffic in bulk).
    pub fn par_for_blocks<F>(&mut self, ops_per_block: u64, f: F)
    where
        F: Fn(u32, &mut SharedMem) + Sync,
    {
        let cap = self.spec.shared_mem_per_block;
        (0..self.grid.blocks).into_par_iter().for_each(|b| {
            let mut shmem = SharedMem::new(cap);
            f(b, &mut shmem);
        });
        self.traffic.ops(u64::from(self.grid.blocks) * ops_per_block);
        self.traffic.grid_sync();
    }

    /// Single-thread sequential region paying `dependent_accesses` full
    /// global-memory round trips — the "run the serial algorithm on the
    /// device" anti-pattern the paper's Section II-C measures at 144 ms for
    /// an 8192-symbol codebook.
    pub fn sequential<R>(&mut self, dependent_accesses: u64, f: impl FnOnce() -> R) -> R {
        let out = f();
        self.traffic.sequential(dependent_accesses);
        out
    }

    /// Explicit extra grid-wide synchronization (regions already sync
    /// implicitly).
    pub fn grid_sync(&mut self) {
        self.traffic.grid_sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Access;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::test_part())
    }

    #[test]
    fn launch_runs_body_and_charges_clock() {
        let g = gpu();
        let r = g.launch("k", GridDim::new(2, 32), |s| {
            s.traffic().read(Access::Coalesced, 1024, 4);
            42
        });
        assert_eq!(r, 42);
        assert!(g.elapsed() >= g.spec().kernel_ramp);
        assert_eq!(g.clock().launches(), 1);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let g = gpu();
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        g.launch("k", GridDim::cover(n, 256), |s| {
            s.par_for(n, 1, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_chunks_partitions_disjointly() {
        let g = gpu();
        let mut data = vec![0u32; 1000];
        g.launch("k", GridDim::new(8, 128), |s| {
            s.par_for_chunks(&mut data, 128, 1, |ci, chunk| {
                for v in chunk.iter_mut() {
                    *v = ci as u32;
                }
            });
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[129], 1);
        assert_eq!(data[999], 7);
    }

    #[test]
    fn par_for_blocks_gets_fresh_shared_memory() {
        let g = gpu();
        g.launch("k", GridDim::new(4, 256), |s| {
            s.par_for_blocks(1, |_b, shmem| {
                let v: Vec<u32> = shmem.alloc(1024);
                assert_eq!(v.len(), 1024);
                assert_eq!(shmem.used(), 4096);
            });
        });
    }

    #[test]
    fn regions_record_grid_syncs() {
        let g = gpu();
        g.launch("k", GridDim::new(1, 32), |s| {
            s.par_for_small(10, 1, |_| {});
            s.par_for_small(10, 1, |_| {});
            s.grid_sync();
        });
        let rec = g.clock();
        assert_eq!(rec.records()[0].traffic.grid_syncs, 3);
    }

    #[test]
    fn sequential_region_charges_latency() {
        let g = gpu();
        g.launch("serial", GridDim::new(1, 1), |s| s.sequential(1000, || ()));
        let c = g.clock();
        let rec = &c.records()[0];
        assert!(rec.cost.sequential_latency > 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let g = gpu();
        g.launch("k", GridDim::new(1, 2048), |_s| {});
    }

    #[test]
    fn elapsed_matching_selects_kernels() {
        let g = gpu();
        g.launch("hist", GridDim::new(1, 32), |_| {});
        g.launch("encode", GridDim::new(1, 32), |_| {});
        assert!(g.elapsed_matching("hist") > 0.0);
        assert!(g.elapsed_matching("hist") < g.elapsed());
    }

    #[test]
    fn reset_clock_zeroes_elapsed() {
        let g = gpu();
        g.launch("k", GridDim::new(1, 32), |_| {});
        g.reset_clock();
        assert_eq!(g.elapsed(), 0.0);
    }
}
