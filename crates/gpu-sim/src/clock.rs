//! Simulated clock: accumulates modeled kernel times across a pipeline.

use crate::cost::CostBreakdown;
use crate::traffic::Traffic;
use serde::{Deserialize, Serialize};

/// One launched kernel's record on the clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel name as passed to `Gpu::launch`.
    pub name: String,
    /// Modeled time breakdown.
    pub cost: CostBreakdown,
    /// The traffic ledger that produced the cost.
    pub traffic: Traffic,
}

/// Accumulated modeled time of every kernel launched on a [`crate::Gpu`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    records: Vec<KernelRecord>,
}

impl SimClock {
    /// An empty clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Append one kernel record.
    pub fn record(&mut self, name: &str, cost: CostBreakdown, traffic: Traffic) {
        self.records.push(KernelRecord { name: name.to_string(), cost, traffic });
    }

    /// Total modeled seconds across all recorded kernels.
    pub fn elapsed(&self) -> f64 {
        self.records.iter().map(|r| r.cost.total).sum()
    }

    /// Total modeled seconds of kernels whose name contains `pat`.
    pub fn elapsed_matching(&self, pat: &str) -> f64 {
        self.records.iter().filter(|r| r.name.contains(pat)).map(|r| r.cost.total).sum()
    }

    /// All records, in launch order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Number of kernel launches recorded.
    pub fn launches(&self) -> usize {
        self.records.len()
    }

    /// Clear all records.
    pub fn reset(&mut self) {
        self.records.clear();
    }

    /// Take the records, leaving the clock empty.
    pub fn drain(&mut self) -> Vec<KernelRecord> {
        std::mem::take(&mut self.records)
    }

    /// Aggregate per-kernel-name totals (name, launches, total seconds),
    /// ordered by first launch.
    pub fn by_kernel(&self) -> Vec<(String, usize, f64)> {
        let mut out: Vec<(String, usize, f64)> = Vec::new();
        for r in &self.records {
            match out.iter_mut().find(|(n, _, _)| *n == r.name) {
                Some((_, c, t)) => {
                    *c += 1;
                    *t += r.cost.total;
                }
                None => out.push((r.name.clone(), 1, r.cost.total)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(total: f64) -> CostBreakdown {
        CostBreakdown { total, ..Default::default() }
    }

    #[test]
    fn elapsed_sums_records() {
        let mut c = SimClock::new();
        c.record("a", cost(1.0), Traffic::new());
        c.record("b", cost(2.5), Traffic::new());
        assert!((c.elapsed() - 3.5).abs() < 1e-12);
        assert_eq!(c.launches(), 2);
    }

    #[test]
    fn elapsed_matching_filters_by_substring() {
        let mut c = SimClock::new();
        c.record("hist_block", cost(1.0), Traffic::new());
        c.record("hist_grid", cost(2.0), Traffic::new());
        c.record("encode", cost(4.0), Traffic::new());
        assert!((c.elapsed_matching("hist") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn by_kernel_merges_same_name() {
        let mut c = SimClock::new();
        c.record("k", cost(1.0), Traffic::new());
        c.record("k", cost(1.0), Traffic::new());
        c.record("j", cost(5.0), Traffic::new());
        let agg = c.by_kernel();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "k");
        assert_eq!(agg[0].1, 2);
        assert!((agg[0].2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_and_drain() {
        let mut c = SimClock::new();
        c.record("k", cost(1.0), Traffic::new());
        let recs = c.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(c.launches(), 0);
        c.record("k", cost(1.0), Traffic::new());
        c.reset();
        assert!((c.elapsed() - 0.0).abs() < 1e-12);
    }
}
