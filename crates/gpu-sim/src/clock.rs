//! Simulated clock: accumulates modeled kernel times across a pipeline.
//!
//! Every [`crate::Gpu::launch`] appends one [`KernelRecord`] — the trace
//! event the observability layer ([`crate::trace`]) exports. Records carry
//! the launch geometry, the full [`Traffic`] ledger and [`CostBreakdown`],
//! and `start`/`end` timestamps on the simulated timeline: kernels execute
//! back-to-back, so each record starts where the previous one ended.

use crate::cost::CostBreakdown;
use crate::grid::GridDim;
use crate::traffic::Traffic;
use serde::{Deserialize, Serialize};

/// One launched kernel's record on the clock — a structured trace event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Zero-based launch index on this device.
    pub seq: usize,
    /// Kernel name as passed to `Gpu::launch`.
    pub name: String,
    /// Thread blocks in the launch grid.
    pub blocks: u32,
    /// Threads per block in the launch grid.
    pub threads_per_block: u32,
    /// Command queue (stream) the kernel ran on. Kernels launched directly
    /// through [`crate::Gpu::launch`] run on the default stream 0; a
    /// [`crate::StreamSchedule`] rewrites this when it replays records onto
    /// explicit streams.
    pub stream: u32,
    /// Bandwidth-contention factor in effect over this kernel's execution:
    /// 1.0 when it ran alone, `1 + Σ occupancy-weights` of the kernels
    /// concurrently resident on other streams (see [`crate::stream`]).
    pub contention: f64,
    /// Modeled start time on the simulated clock, seconds.
    pub start: f64,
    /// Modeled end time on the simulated clock (`start + cost.total`).
    pub end: f64,
    /// Modeled time breakdown.
    pub cost: CostBreakdown,
    /// The traffic ledger that produced the cost.
    pub traffic: Traffic,
    /// Trace id of the owning request when this launch ran on behalf of a
    /// served request (see `huff_core::metrics::span`). Empty for launches
    /// outside any request scope.
    pub trace: String,
}

impl KernelRecord {
    /// Derive hardware counters and the roofline classification for this
    /// launch on `spec` (see [`crate::roofline`]).
    pub fn counters(&self, spec: &crate::device::DeviceSpec) -> crate::roofline::Counters {
        crate::roofline::Counters::from_record(self, spec)
    }
}

/// Accumulated modeled time of every kernel launched on a [`crate::Gpu`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    records: Vec<KernelRecord>,
    /// Current simulated time: the end of the last recorded kernel.
    now: f64,
    /// Trace id stamped onto every subsequently recorded kernel (empty =
    /// untraced). Set by the serving layer so request-scoped pipelines
    /// attribute their launches end to end.
    trace: String,
}

impl SimClock {
    /// An empty clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Append one kernel record; it starts at the current simulated time
    /// and advances the clock by `cost.total`.
    pub fn record(&mut self, name: &str, grid: GridDim, cost: CostBreakdown, traffic: Traffic) {
        let start = self.now;
        let end = start + cost.total;
        self.records.push(KernelRecord {
            seq: self.records.len(),
            name: name.to_string(),
            blocks: grid.blocks,
            threads_per_block: grid.threads_per_block,
            stream: 0,
            contention: 1.0,
            start,
            end,
            cost,
            traffic,
            trace: self.trace.clone(),
        });
        self.now = end;
    }

    /// Stamp every subsequently recorded kernel with this trace id (the
    /// owning request's; see `StreamSchedule::set_trace` for the replay
    /// side). Pass `""` to stop stamping.
    pub fn set_trace(&mut self, trace: &str) {
        self.trace = trace.to_string();
    }

    /// Total modeled seconds across all recorded kernels.
    pub fn elapsed(&self) -> f64 {
        self.now
    }

    /// Total modeled seconds of kernels whose name contains `pat`.
    pub fn elapsed_matching(&self, pat: &str) -> f64 {
        self.records.iter().filter(|r| r.name.contains(pat)).map(|r| r.cost.total).sum()
    }

    /// All records, in launch order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Number of kernel launches recorded.
    pub fn launches(&self) -> usize {
        self.records.len()
    }

    /// Clear all records and reset the timeline to zero.
    pub fn reset(&mut self) {
        self.records.clear();
        self.now = 0.0;
    }

    /// Take the records, leaving the clock empty at time zero.
    pub fn drain(&mut self) -> Vec<KernelRecord> {
        self.now = 0.0;
        std::mem::take(&mut self.records)
    }

    /// Aggregate per-kernel-name totals (name, launches, total seconds),
    /// ordered by first launch.
    pub fn by_kernel(&self) -> Vec<(String, usize, f64)> {
        let mut out: Vec<(String, usize, f64)> = Vec::new();
        for r in &self.records {
            match out.iter_mut().find(|(n, _, _)| *n == r.name) {
                Some((_, c, t)) => {
                    *c += 1;
                    *t += r.cost.total;
                }
                None => out.push((r.name.clone(), 1, r.cost.total)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(total: f64) -> CostBreakdown {
        CostBreakdown { total, ..Default::default() }
    }

    fn grid() -> GridDim {
        GridDim::new(1, 32)
    }

    #[test]
    fn elapsed_sums_records() {
        let mut c = SimClock::new();
        c.record("a", grid(), cost(1.0), Traffic::new());
        c.record("b", grid(), cost(2.5), Traffic::new());
        assert!((c.elapsed() - 3.5).abs() < 1e-12);
        assert_eq!(c.launches(), 2);
    }

    #[test]
    fn records_form_a_back_to_back_timeline() {
        let mut c = SimClock::new();
        c.record("a", GridDim::new(4, 128), cost(1.0), Traffic::new());
        c.record("b", grid(), cost(2.0), Traffic::new());
        let r = c.records();
        assert_eq!(r[0].seq, 0);
        assert_eq!(r[1].seq, 1);
        assert_eq!(r[0].blocks, 4);
        assert_eq!(r[0].threads_per_block, 128);
        assert!((r[0].start - 0.0).abs() < 1e-12);
        assert!((r[0].end - 1.0).abs() < 1e-12);
        assert!((r[1].start - 1.0).abs() < 1e-12);
        assert!((r[1].end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn elapsed_matching_filters_by_substring() {
        let mut c = SimClock::new();
        c.record("hist_block", grid(), cost(1.0), Traffic::new());
        c.record("hist_grid", grid(), cost(2.0), Traffic::new());
        c.record("encode", grid(), cost(4.0), Traffic::new());
        assert!((c.elapsed_matching("hist") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn by_kernel_merges_same_name() {
        let mut c = SimClock::new();
        c.record("k", grid(), cost(1.0), Traffic::new());
        c.record("k", grid(), cost(1.0), Traffic::new());
        c.record("j", grid(), cost(5.0), Traffic::new());
        let agg = c.by_kernel();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "k");
        assert_eq!(agg[0].1, 2);
        assert!((agg[0].2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_and_drain() {
        let mut c = SimClock::new();
        c.record("k", grid(), cost(1.0), Traffic::new());
        let recs = c.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(c.launches(), 0);
        assert_eq!(c.elapsed(), 0.0);
        c.record("k", grid(), cost(1.0), Traffic::new());
        c.reset();
        assert!((c.elapsed() - 0.0).abs() < 1e-12);
        // Records appended after a reset restart the timeline at zero.
        c.record("k", grid(), cost(2.0), Traffic::new());
        assert!((c.records()[0].start - 0.0).abs() < 1e-12);
    }
}
