//! Grid, block and thread indexing for kernel launches.
//!
//! Mirrors CUDA's launch configuration: a kernel is launched over a
//! [`GridDim`] of blocks, each with a fixed number of threads. Logical
//! thread indices are flattened to one dimension — every kernel in the
//! paper uses 1-D indexing.

use serde::{Deserialize, Serialize};

/// Launch configuration: how many blocks, and how many threads per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDim {
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block (<= the device's `max_threads_per_block`).
    pub threads_per_block: u32,
}

impl GridDim {
    /// A grid of `blocks` x `threads_per_block` threads.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        assert!(blocks > 0, "grid must have at least one block");
        assert!(threads_per_block > 0, "block must have at least one thread");
        GridDim { blocks, threads_per_block }
    }

    /// The smallest grid of `threads_per_block`-sized blocks covering
    /// `total_threads` logical threads.
    pub fn cover(total_threads: usize, threads_per_block: u32) -> Self {
        assert!(threads_per_block > 0);
        let blocks = total_threads.div_ceil(threads_per_block as usize).max(1);
        GridDim::new(blocks as u32, threads_per_block)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.blocks as usize * self.threads_per_block as usize
    }

    /// Number of warps per block (rounded up).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block.div_ceil(warp_size)
    }
}

/// Identity of one logical thread inside a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadIdx {
    /// Index of the owning block within the grid.
    pub block: u32,
    /// Index of the thread within its block.
    pub thread: u32,
    /// Flattened global index: `block * threads_per_block + thread`.
    pub global: usize,
}

impl ThreadIdx {
    /// Index of the warp this thread belongs to, within its block.
    pub fn warp(&self, warp_size: u32) -> u32 {
        self.thread / warp_size
    }

    /// Lane within the warp.
    pub fn lane(&self, warp_size: u32) -> u32 {
        self.thread % warp_size
    }
}

/// Iterate the `ThreadIdx`s of a grid in global order. Used by the executor;
/// exposed for tests and custom schedulers.
pub fn thread_ids(grid: GridDim) -> impl Iterator<Item = ThreadIdx> {
    (0..grid.total_threads()).map(move |g| ThreadIdx {
        block: (g / grid.threads_per_block as usize) as u32,
        thread: (g % grid.threads_per_block as usize) as u32,
        global: g,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let g = GridDim::cover(1000, 256);
        assert_eq!(g.blocks, 4);
        assert_eq!(g.total_threads(), 1024);
    }

    #[test]
    fn cover_exact_fit() {
        let g = GridDim::cover(1024, 256);
        assert_eq!(g.blocks, 4);
    }

    #[test]
    fn cover_zero_threads_still_one_block() {
        let g = GridDim::cover(0, 128);
        assert_eq!(g.blocks, 1);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = GridDim::new(0, 32);
    }

    #[test]
    fn thread_ids_enumerate_in_order() {
        let g = GridDim::new(2, 3);
        let ids: Vec<_> = thread_ids(g).collect();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], ThreadIdx { block: 0, thread: 0, global: 0 });
        assert_eq!(ids[4], ThreadIdx { block: 1, thread: 1, global: 4 });
    }

    #[test]
    fn warp_and_lane() {
        let t = ThreadIdx { block: 0, thread: 70, global: 70 };
        assert_eq!(t.warp(32), 2);
        assert_eq!(t.lane(32), 6);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        assert_eq!(GridDim::new(1, 33).warps_per_block(32), 2);
        assert_eq!(GridDim::new(1, 32).warps_per_block(32), 1);
    }
}
