//! Kernel-trace export: structured per-launch events and Chrome
//! `trace_event` timelines.
//!
//! Every [`crate::Gpu::launch`] leaves one [`KernelRecord`] on the device's
//! [`crate::SimClock`] — name, launch grid, the full [`crate::Traffic`]
//! ledger, the [`crate::CostBreakdown`], and modeled `start`/`end`
//! timestamps. This module turns those records into the two machine
//! formats the observability layer exports:
//!
//! * [`events_json`] — a JSON array with one object per kernel launch,
//!   nesting the complete cost breakdown and traffic ledger (the
//!   `"kernels"` array of the `rsh-trace-v1` schema, see FORMAT.md);
//! * [`ChromeTrace`] — the Chrome `trace_event` format (the JSON consumed
//!   by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): each
//!   kernel becomes a complete ("ph":"X") slice on a named lane, so a
//!   pipeline run opens directly as a kernel timeline.
//!
//! ```
//! use gpu_sim::{trace, Access, Gpu, GridDim};
//!
//! let gpu = Gpu::v100();
//! gpu.launch("histogram", GridDim::new(640, 256), |scope| {
//!     scope.traffic().read(Access::Coalesced, 1 << 20, 2);
//! });
//! let clock = gpu.clock();
//! let chrome = trace::chrome_trace("V100 (modeled)", clock.records());
//! assert!(chrome.starts_with("{\"traceEvents\":["));
//! assert!(chrome.contains("\"histogram\""));
//! ```

use crate::clock::KernelRecord;
use serde::json::{Map, Value};
use serde::Serialize;

/// Microseconds — the time unit of the Chrome `trace_event` format.
fn us(seconds: f64) -> Value {
    Value::Float(seconds * 1e6)
}

/// One kernel record as a structured JSON event.
///
/// The object carries the launch identity (`seq`, `name`, `blocks`,
/// `threads_per_block`), the modeled `start`/`end` timestamps, and the
/// complete `cost` and `traffic` sub-objects.
pub fn event_json(record: &KernelRecord) -> Value {
    record.to_json()
}

/// JSON array of structured events, one per kernel launch, in launch
/// order.
pub fn events_json(records: &[KernelRecord]) -> Value {
    Value::Array(records.iter().map(event_json).collect())
}

/// Builder for a Chrome `trace_event` timeline.
///
/// Lanes (Chrome "threads") group kernels — one lane per pipeline stage is
/// the usual shape. Every kernel becomes a complete event (`"ph":"X"`)
/// with its modeled duration; cost breakdown and traffic land in `args`
/// where Perfetto's slice detail pane shows them.
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    events: Vec<Value>,
    spec: Option<crate::device::DeviceSpec>,
}

impl ChromeTrace {
    /// A new timeline whose process is labeled `process_name`.
    pub fn new(process_name: &str) -> Self {
        let mut t = ChromeTrace { events: Vec::new(), spec: None };
        t.events.push(metadata_event("process_name", None, process_name));
        t
    }

    /// Name lane `tid` (shown as a thread name in the viewer).
    pub fn lane(&mut self, tid: u32, name: &str) {
        self.events.push(metadata_event("thread_name", Some(tid), name));
    }

    /// Attach a device spec: subsequent [`ChromeTrace::kernel`] calls add
    /// derived [`crate::roofline::Counters`] to each slice's `args`.
    pub fn with_counters(mut self, spec: crate::device::DeviceSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Append one kernel as a complete event on lane `tid`.
    pub fn kernel(&mut self, tid: u32, rec: &KernelRecord) {
        let mut e = Map::new();
        e.insert("name".into(), Value::String(rec.name.clone()));
        e.insert("cat".into(), "kernel".into());
        e.insert("ph".into(), "X".into());
        e.insert("ts".into(), us(rec.start));
        e.insert("dur".into(), us(rec.end - rec.start));
        e.insert("pid".into(), Value::Int(0));
        e.insert("tid".into(), Value::Int(i128::from(tid)));
        let mut args = Map::new();
        args.insert("seq".into(), Value::Int(rec.seq as i128));
        args.insert("blocks".into(), Value::Int(i128::from(rec.blocks)));
        args.insert("threads_per_block".into(), Value::Int(i128::from(rec.threads_per_block)));
        args.insert("stream".into(), Value::Int(i128::from(rec.stream)));
        args.insert("contention".into(), Value::Float(rec.contention));
        args.insert("bound".into(), rec.cost.bound().into());
        args.insert("cost".into(), rec.cost.to_json());
        args.insert("traffic".into(), rec.traffic.to_json());
        if !rec.trace.is_empty() {
            args.insert("trace".into(), Value::String(rec.trace.clone()));
        }
        if let Some(spec) = &self.spec {
            args.insert("counters".into(), rec.counters(spec).to_json());
        }
        e.insert("args".into(), Value::Object(args));
        self.events.push(Value::Object(e));
    }

    /// Append an arbitrary complete event (`"ph":"X"`) on lane `tid` —
    /// the span-tree exporter uses this for request/stage slices that are
    /// not kernel launches. `start`/`end` are seconds on the modeled
    /// clock; `args` lands in the viewer's slice detail pane.
    pub fn slice(&mut self, tid: u32, cat: &str, name: &str, start: f64, end: f64, args: Map) {
        let mut e = Map::new();
        e.insert("name".into(), Value::String(name.to_string()));
        e.insert("cat".into(), cat.into());
        e.insert("ph".into(), "X".into());
        e.insert("ts".into(), us(start));
        e.insert("dur".into(), us(end - start));
        e.insert("pid".into(), Value::Int(0));
        e.insert("tid".into(), Value::Int(i128::from(tid)));
        e.insert("args".into(), Value::Object(args));
        self.events.push(Value::Object(e));
    }

    /// Append an instant event (`"ph":"i"`) on lane `tid` — span *events*
    /// (retries, device loss, shed) render as markers in the viewer.
    pub fn instant(&mut self, tid: u32, cat: &str, name: &str, at: f64, args: Map) {
        let mut e = Map::new();
        e.insert("name".into(), Value::String(name.to_string()));
        e.insert("cat".into(), cat.into());
        e.insert("ph".into(), "i".into());
        e.insert("s".into(), "t".into());
        e.insert("ts".into(), us(at));
        e.insert("pid".into(), Value::Int(0));
        e.insert("tid".into(), Value::Int(i128::from(tid)));
        e.insert("args".into(), Value::Object(args));
        self.events.push(Value::Object(e));
    }

    /// Render the timeline as Chrome `trace_event` JSON (object form).
    pub fn finish(&self) -> String {
        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(self.events.clone()));
        root.insert("displayTimeUnit".into(), "ms".into());
        Value::Object(root).to_string()
    }
}

fn metadata_event(name: &str, tid: Option<u32>, value: &str) -> Value {
    let mut e = Map::new();
    e.insert("name".into(), name.into());
    e.insert("ph".into(), "M".into());
    e.insert("pid".into(), Value::Int(0));
    if let Some(tid) = tid {
        e.insert("tid".into(), Value::Int(i128::from(tid)));
    }
    let mut args = Map::new();
    args.insert("name".into(), value.into());
    e.insert("args".into(), Value::Object(args));
    Value::Object(e)
}

/// Single-lane convenience: all `records` on one lane named `"kernels"`.
pub fn chrome_trace(process_name: &str, records: &[KernelRecord]) -> String {
    let mut t = ChromeTrace::new(process_name);
    t.lane(0, "kernels");
    for r in records {
        t.kernel(0, r);
    }
    t.finish()
}

/// Multi-stream convenience: one lane per distinct stream id, each named
/// `"stream N"`, with every record on its own stream's lane — the view a
/// [`crate::StreamSchedule`] timeline opens as in Perfetto.
pub fn chrome_trace_streams(process_name: &str, records: &[KernelRecord]) -> String {
    let mut t = ChromeTrace::new(process_name);
    let mut ids: Vec<u32> = records.iter().map(|r| r.stream).collect();
    ids.sort_unstable();
    ids.dedup();
    for &s in &ids {
        t.lane(s, &format!("stream {s}"));
    }
    for r in records {
        t.kernel(r.stream, r);
    }
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::exec::Gpu;
    use crate::grid::GridDim;
    use crate::traffic::Access;

    fn traced_gpu() -> Gpu {
        let gpu = Gpu::new(DeviceSpec::test_part());
        gpu.launch("hist", GridDim::new(8, 256), |s| {
            s.traffic().read(Access::Coalesced, 4096, 4);
        });
        gpu.launch("encode", GridDim::new(16, 128), |s| {
            s.traffic().write(Access::Coalesced, 4096, 4);
        });
        gpu
    }

    #[test]
    fn events_json_carries_identity_cost_and_traffic() {
        let gpu = traced_gpu();
        let clock = gpu.clock();
        let v = events_json(clock.records());
        let Value::Array(events) = &v else { panic!("expected array") };
        assert_eq!(events.len(), 2);
        let first = events[0].as_object().unwrap();
        assert_eq!(first.get("name"), Some(&Value::String("hist".into())));
        assert_eq!(first.get("seq"), Some(&Value::Int(0)));
        assert_eq!(first.get("blocks"), Some(&Value::Int(8)));
        assert!(first.get("cost").unwrap().as_object().unwrap().get("total").is_some());
        assert!(first.get("traffic").unwrap().as_object().unwrap().get("read_coalesced").is_some());
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let gpu = traced_gpu();
        let clock = gpu.clock();
        let s = chrome_trace("TestPart", clock.records());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"process_name\""));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"hist\""));
        assert!(s.contains("\"encode\""));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn chrome_timestamps_are_microseconds() {
        let gpu = traced_gpu();
        let clock = gpu.clock();
        let recs = clock.records();
        let mut t = ChromeTrace::new("p");
        t.kernel(0, &recs[1]);
        let s = t.finish();
        // Second kernel starts after the first ends: ts > 0 in µs.
        let expect = format!("\"ts\":{}", recs[1].start * 1e6);
        assert!(s.contains(&expect), "missing {expect} in {s}");
    }

    #[test]
    fn stream_trace_renders_one_lane_per_stream() {
        let gpu = traced_gpu();
        let clock = gpu.clock();
        let mut recs = clock.records().to_vec();
        recs[1].stream = 1;
        let s = chrome_trace_streams("TestPart", &recs);
        assert!(s.contains("\"stream 0\""));
        assert!(s.contains("\"stream 1\""));
        // The second kernel's slice lands on lane 1.
        assert!(s.contains("\"tid\":1"));
        assert!(s.contains("\"contention\":1"));
    }

    #[test]
    fn lanes_are_named() {
        let mut t = ChromeTrace::new("p");
        t.lane(3, "codebook");
        let s = t.finish();
        assert!(s.contains("\"tid\":3"));
        assert!(s.contains("\"codebook\""));
    }

    #[test]
    fn with_counters_adds_derived_args() {
        let gpu = traced_gpu();
        let clock = gpu.clock();
        let mut t = ChromeTrace::new("p").with_counters(DeviceSpec::test_part());
        t.lane(0, "kernels");
        for r in clock.records() {
            t.kernel(0, r);
        }
        let s = t.finish();
        assert!(s.contains("\"counters\""));
        assert!(s.contains("\"efficiency\""));
        // Without the spec, no counters arg is emitted.
        assert!(!chrome_trace("p", clock.records()).contains("\"counters\""));
    }
}
