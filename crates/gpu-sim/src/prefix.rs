//! Device primitive: parallel prefix sum (scan).
//!
//! The Rahmani-style baseline encoder (Section III-B) computes every encoded
//! symbol's write offset with a classical parallel scan; the reduce/shuffle
//! encoder also needs small scans for per-chunk bit lengths. This is a
//! blocked two-level work-efficient scan: block-local scans, a scan of block
//! totals, then a uniform add — 3n element moves, which is what the ledger
//! charges.

use crate::exec::KernelScope;
use crate::traffic::Access;
use rayon::prelude::*;

/// Exclusive prefix sum of `input`, accounting traffic on `scope`.
///
/// Returns a vector `out` with `out[0] = 0` and
/// `out[i] = input[0] + ... + input[i-1]`, plus the grand total.
pub fn exclusive_scan(scope: &mut KernelScope, input: &[u64]) -> (Vec<u64>, u64) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let block = 4096usize;
    let nblocks = n.div_ceil(block);

    // Phase 1: per-block exclusive scans, collecting block totals.
    let mut out = vec![0u64; n];
    let totals: Vec<u64> = out
        .par_chunks_mut(block)
        .zip(input.par_chunks(block))
        .map(|(o, i)| {
            let mut acc = 0u64;
            for (dst, &src) in o.iter_mut().zip(i) {
                *dst = acc;
                acc += src;
            }
            acc
        })
        .collect();

    // Phase 2: scan of block totals (small, host-serial; the device would
    // use a single block).
    let mut block_offsets = vec![0u64; nblocks];
    let mut acc = 0u64;
    for (off, &t) in block_offsets.iter_mut().zip(&totals) {
        *off = acc;
        acc += t;
    }
    let grand_total = acc;

    // Phase 3: uniform add of block offsets.
    out.par_chunks_mut(block).zip(block_offsets.par_iter()).for_each(|(o, &off)| {
        if off != 0 {
            for v in o.iter_mut() {
                *v += off;
            }
        }
    });

    let t = scope.traffic();
    t.read(Access::Coalesced, n as u64, 8);
    t.write(Access::Coalesced, n as u64, 8);
    t.read(Access::Coalesced, n as u64, 8); // uniform-add pass re-reads
    t.write(Access::Coalesced, n as u64, 8);
    t.ops(3 * n as u64);
    t.grid_sync();
    t.grid_sync();

    (out, grand_total)
}

/// Elements scanned per block by [`single_pass_scan`].
pub const SINGLE_PASS_BLOCK: usize = 4096;

/// Exclusive prefix sum via a decoupled-lookback single pass
/// (Merrill & Garland style), accounting traffic on `scope`.
///
/// Same result as [`exclusive_scan`], but modeled as one fused pass: each
/// block scans its tile, publishes an aggregate/prefix descriptor, and
/// resolves its exclusive offset by inspecting predecessors' descriptors
/// instead of waiting on a device-wide barrier. The ledger charges ~2n
/// element moves (vs. 4n for the two-level scan's uniform-add re-read),
/// one small descriptor write plus an expected two-descriptor lookback
/// window per block, and — crucially — **zero grid syncs**, which is what
/// lets callers run it as an epilogue inside another kernel.
pub fn single_pass_scan(scope: &mut KernelScope, input: &[u64]) -> (Vec<u64>, u64) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let block = SINGLE_PASS_BLOCK;
    let nblocks = n.div_ceil(block);

    // Per-block exclusive scans, collecting block totals (the device would
    // do this in shared memory while the lookback resolves).
    let mut out = vec![0u64; n];
    let totals: Vec<u64> = out
        .par_chunks_mut(block)
        .zip(input.par_chunks(block))
        .map(|(o, i)| {
            let mut acc = 0u64;
            for (dst, &src) in o.iter_mut().zip(i) {
                *dst = acc;
                acc += src;
            }
            acc
        })
        .collect();

    // Lookback resolution: block k's exclusive offset is the running sum of
    // predecessors' aggregates; on the host this is the same serial scan,
    // but no grid-wide barrier separates it from the tile scans.
    let mut block_offsets = vec![0u64; nblocks];
    let mut acc = 0u64;
    for (off, &t) in block_offsets.iter_mut().zip(&totals) {
        *off = acc;
        acc += t;
    }
    let grand_total = acc;

    out.par_chunks_mut(block).zip(block_offsets.par_iter()).for_each(|(o, &off)| {
        if off != 0 {
            for v in o.iter_mut() {
                *v += off;
            }
        }
    });

    let b = nblocks as u64;
    let t = scope.traffic();
    t.read(Access::Coalesced, n as u64, 8);
    t.write(Access::Coalesced, n as u64, 8);
    // Descriptor publication (aggregate + status flag, 16 B, one thread per
    // block -> strided) and the expected-two-predecessor lookback window.
    t.write(Access::Strided, b, 16);
    t.read(Access::Strided, 2 * b, 16);
    t.shared(block as u64 * 8); // tile scan workspace
    t.ops(2 * n as u64 + 8 * b);

    (out, grand_total)
}

/// Inclusive prefix sum of `input` (each element includes itself).
pub fn inclusive_scan(scope: &mut KernelScope, input: &[u64]) -> Vec<u64> {
    let (mut out, _) = exclusive_scan(scope, input);
    out.par_iter_mut().zip(input.par_iter()).for_each(|(o, &i)| *o += i);
    let t = scope.traffic();
    t.read(Access::Coalesced, input.len() as u64, 8);
    t.write(Access::Coalesced, input.len() as u64, 8);
    t.ops(input.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::exec::Gpu;
    use crate::grid::GridDim;

    fn with_scope<R>(f: impl FnOnce(&mut KernelScope) -> R) -> R {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("scan_test", GridDim::new(1, 32), f)
    }

    #[test]
    fn exclusive_scan_small() {
        let (out, total) = with_scope(|s| exclusive_scan(s, &[3, 1, 4, 1, 5]));
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_scan_empty() {
        let (out, total) = with_scope(|s| exclusive_scan(s, &[]));
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn exclusive_scan_crosses_blocks() {
        // Larger than one 4096 block: verify against serial reference.
        let input: Vec<u64> = (0..10_000u64).map(|i| i % 7).collect();
        let (out, total) = with_scope(|s| exclusive_scan(s, &input));
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(out[i], acc, "at {i}");
            acc += v;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_matches_exclusive_plus_self() {
        let input = vec![2u64, 0, 9, 9, 1];
        let inc = with_scope(|s| inclusive_scan(s, &input));
        assert_eq!(inc, vec![2, 2, 11, 20, 21]);
    }

    #[test]
    fn single_pass_matches_two_level_scan() {
        let input: Vec<u64> = (0..10_000u64).map(|i| (i * 31) % 13).collect();
        let (two_level, total_a) = with_scope(|s| exclusive_scan(s, &input));
        let (single, total_b) = with_scope(|s| single_pass_scan(s, &input));
        assert_eq!(single, two_level);
        assert_eq!(total_a, total_b);
    }

    #[test]
    fn single_pass_scan_empty() {
        let (out, total) = with_scope(|s| single_pass_scan(s, &[]));
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_pass_charges_no_grid_syncs_and_less_traffic() {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("two_level", GridDim::new(1, 32), |s| {
            let _ = exclusive_scan(s, &vec![1u64; 100_000]);
        });
        g.launch("single_pass", GridDim::new(1, 32), |s| {
            let _ = single_pass_scan(s, &vec![1u64; 100_000]);
        });
        let c = g.clock();
        let two = &c.records()[0].traffic;
        let one = &c.records()[1].traffic;
        assert_eq!(two.grid_syncs, 2);
        assert_eq!(one.grid_syncs, 0);
        assert_eq!(one.read_coalesced, 100_000 * 8);
        assert_eq!(one.write_coalesced, 100_000 * 8);
        assert!(one.logical_dram_bytes() < two.logical_dram_bytes());
    }

    #[test]
    fn scan_accounts_traffic() {
        let g = Gpu::new(DeviceSpec::test_part());
        g.launch("scan", GridDim::new(1, 32), |s| {
            let _ = exclusive_scan(s, &vec![1u64; 1000]);
        });
        let c = g.clock();
        let t = &c.records()[0].traffic;
        assert_eq!(t.read_coalesced, 2 * 8000);
        assert_eq!(t.write_coalesced, 2 * 8000);
    }
}
