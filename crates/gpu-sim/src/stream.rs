//! CUDA-style streams and events: concurrent command queues on one device.
//!
//! A [`StreamSchedule`] models what a CUDA runtime does with multiple
//! streams: each stream is a FIFO command queue, kernels on different
//! streams may execute concurrently, and [`EventId`]s impose cross-stream
//! ordering (`cudaEventRecord` / `cudaStreamWaitEvent`). The schedule is
//! *record-then-replay*: pipelines first run normally on a [`crate::Gpu`]
//! (capturing bit-exact results and per-kernel [`KernelRecord`]s), then
//! those records are enqueued here and [`StreamSchedule::run`] computes the
//! multi-stream timeline deterministically — independent of host thread
//! interleaving, which keeps sharded pipelines reproducible under rayon.
//!
//! ## Contention model
//!
//! Overlap is not free: concurrently-resident kernels share the device's
//! DRAM bandwidth. When a kernel starts while others are still executing,
//! its memory term is inflated by a contention factor
//!
//! ```text
//! f = 1 + Σ_resident min(1, blocks_resident / sm_count)
//! ```
//!
//! — each resident kernel claims a share of bandwidth proportional to the
//! fraction of SMs it occupies, capped at the whole device. The kernel's
//! contended time is then
//!
//! ```text
//! launch + grid_syncs + sequential_latency + atomics
//!       + max(memory × f, compute, shared)
//! ```
//!
//! so memory-bound kernels overlapped with other memory-bound kernels gain
//! nothing (honest: the bus is saturated either way), while latency- and
//! sync-bound kernels (codebook construction, small grids) overlap almost
//! for free — which is exactly where multi-stream pipelines win. The
//! factor is sampled once at the kernel's start; DESIGN.md § "Streams,
//! events, and the contention model" discusses this simplification and
//! works a two-stream example.
//!
//! ## Fault events
//!
//! A schedule can carry one injected device failure
//! ([`StreamSchedule::fail_at`]): the device dies at a modeled instant
//! `t`. Replay proceeds normally until the first kernel whose contended
//! completion would land past `t`; that kernel and every kernel still
//! queued behind it (on any stream) are *dropped* — returned on
//! [`Timeline::dropped`] instead of [`Timeline::records`] — and
//! [`Timeline::failed_at`] reports the failure time. Detection is
//! modeled at the first non-completing kernel, so a short kernel on a
//! sibling stream that would have squeaked in under `t` is abandoned
//! too; the quarantine layer above simply recomputes a shard more than
//! strictly necessary, which is the safe direction. Per-stream, the
//! completed records always form a prefix of that stream's enqueue
//! order — the invariant shard quarantine relies on to decide which
//! shards survived.
//!
//! ```
//! use gpu_sim::{DeviceSpec, Gpu, GridDim, Access, StreamSchedule};
//!
//! // Capture two identical kernels, then replay them on two streams.
//! let gpu = Gpu::new(DeviceSpec::test_part());
//! for _ in 0..2 {
//!     gpu.launch("copy", GridDim::new(2, 256), |s| {
//!         s.traffic().read(Access::Coalesced, 1 << 20, 4);
//!     });
//! }
//! let recs = gpu.clock().drain();
//! let mut sched = StreamSchedule::new(gpu.spec().clone(), 2);
//! sched.enqueue(0, recs[0].clone());
//! sched.enqueue(1, recs[1].clone());
//! let tl = sched.run();
//! // Overlapped but contended: faster than serial, slower than one kernel.
//! assert!(tl.makespan < tl.serial_seconds);
//! assert!(tl.makespan > tl.serial_seconds / 2.0);
//! ```

use crate::clock::KernelRecord;
use crate::device::DeviceSpec;
use std::collections::VecDeque;

/// Handle to an event recorded on a stream (see
/// [`StreamSchedule::record_event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

/// One command in a stream's FIFO queue.
#[derive(Debug, Clone)]
enum Op {
    /// Execute a kernel (base, uncontended record).
    Kernel(Box<KernelRecord>),
    /// Complete event `id` when every prior op on this stream finished.
    Record(usize),
    /// Block this stream until event `id` completes.
    Wait(usize),
}

/// A device's command queues plus the deterministic scheduler that turns
/// them into one contended timeline. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct StreamSchedule {
    spec: DeviceSpec,
    queues: Vec<VecDeque<Op>>,
    num_events: usize,
    fail_at: Option<f64>,
    trace: String,
}

impl StreamSchedule {
    /// A schedule with `streams` empty command queues on a device.
    pub fn new(spec: DeviceSpec, streams: usize) -> Self {
        assert!(streams > 0, "a device needs at least one stream");
        StreamSchedule {
            spec,
            queues: vec![VecDeque::new(); streams],
            num_events: 0,
            fail_at: None,
            trace: String::new(),
        }
    }

    /// Set the owning request's trace id: every record enqueued *after*
    /// this call whose `trace` is still empty is stamped with it, so the
    /// replayed timeline (including dropped records) attributes each
    /// kernel to the request that launched it.
    pub fn set_trace(&mut self, trace: &str) {
        self.trace = trace.to_string();
    }

    /// Inject a device failure at modeled time `t` (seconds, `t ≥ 0`).
    /// See the module docs ("Fault events") for the drop semantics.
    pub fn fail_at(&mut self, t: f64) {
        assert!(t.is_finite() && t >= 0.0, "failure time must be finite and non-negative");
        self.fail_at = Some(t);
    }

    /// Number of command queues.
    pub fn num_streams(&self) -> usize {
        self.queues.len()
    }

    /// Append a kernel to `stream`'s queue. The record's `start`/`end`
    /// and `stream` fields are rewritten by [`StreamSchedule::run`]; only
    /// its cost breakdown and launch geometry matter here.
    pub fn enqueue(&mut self, stream: usize, mut record: KernelRecord) {
        if record.trace.is_empty() && !self.trace.is_empty() {
            record.trace = self.trace.clone();
        }
        self.queues[stream].push_back(Op::Kernel(Box::new(record)));
    }

    /// Append a whole pipeline's records to `stream`'s queue in order.
    pub fn enqueue_all(&mut self, stream: usize, records: impl IntoIterator<Item = KernelRecord>) {
        for r in records {
            self.enqueue(stream, r);
        }
    }

    /// Record an event on `stream`: it completes when everything enqueued
    /// on `stream` so far has finished.
    pub fn record_event(&mut self, stream: usize) -> EventId {
        let id = self.num_events;
        self.num_events += 1;
        self.queues[stream].push_back(Op::Record(id));
        EventId(id)
    }

    /// Make `stream` wait for `event` before running anything enqueued
    /// after this call.
    pub fn wait_event(&mut self, stream: usize, event: EventId) {
        assert!(event.0 < self.num_events, "event from a different schedule");
        self.queues[stream].push_back(Op::Wait(event.0));
    }

    /// Drain every queue and compute the contended timeline.
    ///
    /// Deterministic: among schedulable kernels, the one with the earliest
    /// ready time runs first (ties broken by lowest stream id). Scheduled
    /// start times are therefore nondecreasing, so the resident set at a
    /// kernel's start is exactly the already-scheduled kernels that have
    /// not yet ended. Panics on a cross-stream event cycle (deadlock).
    pub fn run(mut self) -> Timeline {
        let n = self.queues.len();
        let mut ready = vec![0.0f64; n];
        let mut event_time: Vec<Option<f64>> = vec![None; self.num_events];
        let mut scheduled: Vec<KernelRecord> = Vec::new();
        let mut serial_seconds = 0.0;

        loop {
            // Resolve event records/waits at queue heads to a fixed point.
            let mut progress = true;
            while progress {
                progress = false;
                for s in 0..n {
                    while let Some(op) = self.queues[s].front() {
                        match op {
                            Op::Record(id) => {
                                event_time[*id] = Some(ready[s]);
                                self.queues[s].pop_front();
                                progress = true;
                            }
                            Op::Wait(id) => match event_time[*id] {
                                Some(t) => {
                                    ready[s] = ready[s].max(t);
                                    self.queues[s].pop_front();
                                    progress = true;
                                }
                                None => break,
                            },
                            Op::Kernel(_) => break,
                        }
                    }
                }
            }

            // Earliest-ready stream with a kernel at its head runs next.
            let next =
                (0..n).filter(|&s| matches!(self.queues[s].front(), Some(Op::Kernel(_)))).min_by(
                    |&a, &b| ready[a].partial_cmp(&ready[b]).expect("finite times").then(a.cmp(&b)),
                );
            let Some(s) = next else {
                assert!(
                    self.queues.iter().all(VecDeque::is_empty),
                    "stream schedule deadlock: a stream waits on an event that \
                     is never recorded"
                );
                break;
            };
            let Some(Op::Kernel(rec)) = self.queues[s].pop_front() else { unreachable!() };
            let mut rec = *rec;
            serial_seconds += rec.cost.total;

            let start = ready[s];
            // Device failure: the first kernel that cannot complete by the
            // failure instant kills the device; it and everything still
            // queued are dropped (see module docs).
            if let Some(t) = self.fail_at {
                let occupancy_probe =
                    |blocks: u32| (f64::from(blocks) / f64::from(self.spec.sm_count)).min(1.0);
                let f_probe: f64 = 1.0
                    + scheduled
                        .iter()
                        .filter(|r| r.end > start)
                        .map(|r| occupancy_probe(r.blocks))
                        .sum::<f64>();
                let fixed = rec.cost.launch
                    + rec.cost.grid_syncs
                    + rec.cost.sequential_latency
                    + rec.cost.atomics;
                let contended =
                    fixed + (rec.cost.memory * f_probe).max(rec.cost.compute).max(rec.cost.shared);
                if start + contended > t {
                    rec.stream = s as u32;
                    rec.start = t;
                    rec.end = t;
                    let mut dropped = vec![rec];
                    for (qs, q) in self.queues.iter_mut().enumerate() {
                        while let Some(op) = q.pop_front() {
                            if let Op::Kernel(r) = op {
                                let mut r = *r;
                                serial_seconds += r.cost.total;
                                r.stream = qs as u32;
                                r.start = t;
                                r.end = t;
                                dropped.push(r);
                            }
                        }
                    }
                    let makespan = scheduled.iter().map(|r| r.end).fold(0.0, f64::max).max(t);
                    for (i, r) in scheduled.iter_mut().enumerate() {
                        r.seq = i;
                    }
                    return Timeline {
                        records: scheduled,
                        makespan,
                        serial_seconds,
                        dropped,
                        failed_at: Some(t),
                    };
                }
            }
            // Bandwidth shares of kernels still executing at `start`,
            // weighted by the fraction of the device each occupies.
            let occupancy =
                |blocks: u32| (f64::from(blocks) / f64::from(self.spec.sm_count)).min(1.0);
            let f: f64 = 1.0
                + scheduled
                    .iter()
                    .filter(|r| r.end > start)
                    .map(|r| occupancy(r.blocks))
                    .sum::<f64>();

            let c = &mut rec.cost;
            let fixed = c.launch + c.grid_syncs + c.sequential_latency + c.atomics;
            c.memory *= f;
            c.total = fixed + c.memory.max(c.compute).max(c.shared);
            rec.contention = f;
            rec.stream = s as u32;
            rec.start = start;
            rec.end = start + rec.cost.total;
            ready[s] = rec.end;
            scheduled.push(rec);
        }

        let makespan = scheduled.iter().map(|r| r.end).fold(0.0, f64::max);
        for (i, r) in scheduled.iter_mut().enumerate() {
            r.seq = i;
        }
        Timeline {
            records: scheduled,
            makespan,
            serial_seconds,
            dropped: Vec::new(),
            failed_at: None,
        }
    }
}

/// The scheduled multi-stream timeline of one device.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Every kernel, in scheduling order (nondecreasing `start`; `seq`
    /// renumbered to timeline position). `stream`, `contention`,
    /// `start`/`end` and the contended `cost` are all rewritten.
    pub records: Vec<KernelRecord>,
    /// End of the last kernel — the device's wall-clock for the batch.
    pub makespan: f64,
    /// What the same kernels would take back-to-back on one stream (sum of
    /// their uncontended costs) — the baseline for overlap speedup.
    /// Includes dropped kernels: the baseline machine never fails.
    pub serial_seconds: f64,
    /// Kernels abandoned when the device failed ([`StreamSchedule::fail_at`]),
    /// in per-stream enqueue order with `start = end = failed_at`. Empty on
    /// a healthy replay.
    pub dropped: Vec<KernelRecord>,
    /// The injected failure time, when the device died mid-replay.
    pub failed_at: Option<f64>,
}

impl Timeline {
    /// Overlap speedup vs. the serial single-stream baseline (≥ 1.0 unless
    /// contention pathologically dominates).
    pub fn speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.serial_seconds / self.makespan
    }

    /// The records of one stream, in execution (= enqueue) order.
    pub fn stream_records(&self, stream: u32) -> impl Iterator<Item = &KernelRecord> {
        self.records.iter().filter(move |r| r.stream == stream)
    }

    /// Distinct stream ids present, ascending.
    pub fn stream_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.records.iter().map(|r| r.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total busy seconds of one stream (sum of its contended kernel
    /// durations).
    pub fn stream_busy(&self, stream: u32) -> f64 {
        self.stream_records(stream).map(|r| r.cost.total).sum()
    }

    /// The dropped (never-executed) records of one stream, in enqueue
    /// order. Non-empty only after an injected device failure.
    pub fn dropped_on(&self, stream: u32) -> impl Iterator<Item = &KernelRecord> {
        self.dropped.iter().filter(move |r| r.stream == stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostBreakdown;
    use crate::traffic::Traffic;

    /// A memory-bound record: `memory` seconds of DRAM time, full-device
    /// occupancy unless `blocks` says otherwise.
    fn mem_kernel(name: &str, memory: f64, blocks: u32) -> KernelRecord {
        let cost = CostBreakdown { memory, total: memory, ..Default::default() };
        KernelRecord {
            seq: 0,
            name: name.into(),
            blocks,
            threads_per_block: 256,
            stream: 0,
            contention: 1.0,
            start: 0.0,
            end: memory,
            cost,
            traffic: Traffic::new(),
            trace: String::new(),
        }
    }

    /// A latency-bound record: fixed-cost only, no memory term.
    fn latency_kernel(name: &str, latency: f64) -> KernelRecord {
        let cost =
            CostBreakdown { sequential_latency: latency, total: latency, ..Default::default() };
        KernelRecord { cost, ..mem_kernel(name, 0.0, 1) }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::test_part() // 4 SMs
    }

    #[test]
    fn single_stream_is_back_to_back_and_uncontended() {
        let mut s = StreamSchedule::new(spec(), 1);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(0, mem_kernel("b", 2.0, 4));
        let tl = s.run();
        assert_eq!(tl.records.len(), 2);
        assert!((tl.records[0].end - 1.0).abs() < 1e-12);
        assert!((tl.records[1].start - 1.0).abs() < 1e-12);
        assert!((tl.records[1].end - 3.0).abs() < 1e-12);
        assert!((tl.makespan - 3.0).abs() < 1e-12);
        assert!((tl.serial_seconds - 3.0).abs() < 1e-12);
        assert!(tl.records.iter().all(|r| (r.contention - 1.0).abs() < 1e-12));
        assert!((tl.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_full_occupancy_memory_kernels_contend_to_serial_time() {
        // Both saturate the device: stream 1's kernel starts at t=0 but
        // sees f = 2, so overlap buys nothing over back-to-back.
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(1, mem_kernel("b", 1.0, 4));
        let tl = s.run();
        let b = tl.stream_records(1).next().unwrap();
        assert!((b.contention - 2.0).abs() < 1e-12);
        assert!((b.cost.total - 2.0).abs() < 1e-12);
        assert!((tl.makespan - 2.0).abs() < 1e-12, "makespan {}", tl.makespan);
    }

    #[test]
    fn latency_bound_kernels_overlap_for_free() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, latency_kernel("a", 1.0));
        s.enqueue(1, latency_kernel("b", 1.0));
        let tl = s.run();
        assert!((tl.makespan - 1.0).abs() < 1e-12);
        assert!((tl.speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn low_occupancy_kernel_barely_slows_a_resident_one() {
        // A 1-block kernel on a 4-SM device claims 1/4 of bandwidth.
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("small", 10.0, 1));
        s.enqueue(1, mem_kernel("big", 1.0, 4));
        let tl = s.run();
        let big = tl.records.iter().find(|r| r.name == "big").unwrap();
        assert!((big.contention - 1.25).abs() < 1e-12);
        assert!((big.cost.total - 1.25).abs() < 1e-12);
    }

    #[test]
    fn contention_sampled_at_start_not_retroactive() {
        // Stream 0: long kernel [0, 4). Stream 1: short kernel at 0 sees
        // f=2 (the long one is resident); the long one itself started
        // alone and keeps f=1.
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("long", 4.0, 4));
        s.enqueue(1, mem_kernel("short", 1.0, 4));
        let tl = s.run();
        let long = tl.records.iter().find(|r| r.name == "long").unwrap();
        let short = tl.records.iter().find(|r| r.name == "short").unwrap();
        assert!((long.contention - 1.0).abs() < 1e-12);
        assert!((short.contention - 2.0).abs() < 1e-12);
    }

    #[test]
    fn events_order_across_streams() {
        // Stream 1 must wait for stream 0's kernel via an event.
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("producer", 2.0, 4));
        let ev = s.record_event(0);
        s.wait_event(1, ev);
        s.enqueue(1, mem_kernel("consumer", 1.0, 4));
        let tl = s.run();
        let c = tl.records.iter().find(|r| r.name == "consumer").unwrap();
        assert!((c.start - 2.0).abs() < 1e-12);
        // No overlap → no contention.
        assert!((c.contention - 1.0).abs() < 1e-12);
    }

    #[test]
    fn event_recorded_mid_queue_completes_at_that_point() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        let ev = s.record_event(0);
        s.enqueue(0, mem_kernel("b", 5.0, 1));
        s.wait_event(1, ev);
        s.enqueue(1, mem_kernel("c", 1.0, 1));
        let tl = s.run();
        let c = tl.records.iter().find(|r| r.name == "c").unwrap();
        // c waits for a (ends at 1.0), not for b.
        assert!((c.start - 1.0).abs() < 1e-12, "start {}", c.start);
    }

    #[test]
    fn timeline_starts_are_nondecreasing_and_seq_renumbered() {
        let mut s = StreamSchedule::new(spec(), 3);
        for i in 0..9 {
            s.enqueue(i % 3, mem_kernel(&format!("k{i}"), 0.5 + 0.1 * i as f64, 2));
        }
        let tl = s.run();
        for w in tl.records.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for (i, r) in tl.records.iter().enumerate() {
            assert_eq!(r.seq, i);
        }
        assert_eq!(tl.stream_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn per_stream_records_keep_enqueue_order() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("a0", 1.0, 4));
        s.enqueue(0, mem_kernel("a1", 1.0, 4));
        s.enqueue(1, mem_kernel("b0", 0.5, 4));
        let tl = s.run();
        let names: Vec<&str> = tl.stream_records(0).map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a0", "a1"]);
        let busy: f64 = tl.stream_busy(0);
        let sum: f64 = tl.stream_records(0).map(|r| r.end - r.start).sum();
        assert!((busy - sum).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn circular_wait_panics() {
        // Each stream's wait precedes the record that would satisfy the
        // other's wait — a cycle no scheduling order can resolve.
        let mut s = StreamSchedule::new(spec(), 2);
        s.queues[0].push_back(Op::Wait(1));
        s.queues[0].push_back(Op::Record(0));
        s.queues[1].push_back(Op::Wait(0));
        s.queues[1].push_back(Op::Record(1));
        s.num_events = 2;
        let _ = s.run();
    }

    #[test]
    fn speedup_of_empty_timeline_is_one() {
        let tl = StreamSchedule::new(spec(), 2).run();
        assert!((tl.speedup() - 1.0).abs() < 1e-12);
        assert_eq!(tl.records.len(), 0);
        assert!(tl.dropped.is_empty());
        assert_eq!(tl.failed_at, None);
    }

    #[test]
    fn healthy_replay_reports_no_failure() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(1, mem_kernel("b", 1.0, 4));
        let tl = s.run();
        assert_eq!(tl.failed_at, None);
        assert!(tl.dropped.is_empty());
    }

    #[test]
    fn device_failure_drops_incomplete_and_queued_kernels() {
        // Stream 0: a [0,1), b [1,2). Device dies at 1.5: a completes,
        // b cannot (ends at 2 > 1.5) and is dropped along with c.
        let mut s = StreamSchedule::new(spec(), 1);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(0, mem_kernel("b", 1.0, 4));
        s.enqueue(0, mem_kernel("c", 1.0, 4));
        s.fail_at(1.5);
        let tl = s.run();
        assert_eq!(tl.failed_at, Some(1.5));
        let ran: Vec<&str> = tl.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(ran, vec!["a"]);
        let lost: Vec<&str> = tl.dropped.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(lost, vec!["b", "c"]);
        // Dropped records pin the failure instant and never accrue time.
        for r in &tl.dropped {
            assert_eq!(r.start, 1.5);
            assert_eq!(r.end, 1.5);
        }
        // The serial baseline still counts all three kernels.
        assert!((tl.serial_seconds - 3.0).abs() < 1e-12);
        assert!((tl.makespan - 1.5).abs() < 1e-12);
    }

    #[test]
    fn failure_at_zero_drops_everything() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(1, mem_kernel("b", 1.0, 4));
        s.fail_at(0.0);
        let tl = s.run();
        assert!(tl.records.is_empty());
        assert_eq!(tl.dropped.len(), 2);
        assert_eq!(tl.makespan, 0.0);
    }

    #[test]
    fn per_stream_completed_records_are_an_enqueue_prefix_under_failure() {
        let mut s = StreamSchedule::new(spec(), 2);
        for i in 0..3 {
            s.enqueue(0, mem_kernel(&format!("a{i}"), 1.0, 2));
            s.enqueue(1, mem_kernel(&format!("b{i}"), 1.0, 2));
        }
        s.fail_at(2.2);
        let tl = s.run();
        assert!(tl.failed_at.is_some());
        for stream in 0..2u32 {
            let done: Vec<String> = tl.stream_records(stream).map(|r| r.name.clone()).collect();
            let prefix = if stream == 0 { "a" } else { "b" };
            for (i, name) in done.iter().enumerate() {
                assert_eq!(name, &format!("{prefix}{i}"));
            }
            // Everything this stream dropped comes after its completed prefix.
            for (j, r) in tl.dropped_on(stream).enumerate() {
                assert_eq!(r.name, format!("{prefix}{}", done.len() + j));
            }
        }
    }

    #[test]
    fn set_trace_stamps_enqueued_and_dropped_records() {
        let mut s = StreamSchedule::new(spec(), 2);
        s.set_trace("req-7");
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.enqueue(0, mem_kernel("b", 1.0, 4));
        s.enqueue(1, mem_kernel("c", 1.0, 4));
        s.fail_at(1.5);
        let tl = s.run();
        for r in tl.records.iter().chain(&tl.dropped) {
            assert_eq!(r.trace, "req-7", "kernel {} lost its trace id", r.name);
        }
        // A record already stamped by another owner keeps its stamp.
        let mut s = StreamSchedule::new(spec(), 1);
        s.set_trace("req-8");
        let mut pre = mem_kernel("pre", 1.0, 4);
        pre.trace = "req-0".into();
        s.enqueue(0, pre);
        assert_eq!(s.run().records[0].trace, "req-0");
    }

    #[test]
    fn failure_past_makespan_is_a_noop() {
        let mut s = StreamSchedule::new(spec(), 1);
        s.enqueue(0, mem_kernel("a", 1.0, 4));
        s.fail_at(100.0);
        let tl = s.run();
        assert_eq!(tl.records.len(), 1);
        assert!(tl.dropped.is_empty());
        // The failure never fired, so the timeline reads healthy.
        assert_eq!(tl.failed_at, None);
    }
}
