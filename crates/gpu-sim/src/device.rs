//! Device specifications for the simulated accelerators.
//!
//! A [`DeviceSpec`] is a spec-sheet description of a GPU: enough numbers for
//! the analytic cost model in [`crate::cost`] to translate a kernel's memory
//! traffic and thread work into a modeled execution time. Presets are
//! provided for the two GPUs the paper evaluates on (NVIDIA Tesla V100 and
//! Quadro RTX 5000) plus a generic part for tests.

use serde::{Deserialize, Serialize};

/// Spec-sheet description of a simulated GPU.
///
/// All latencies are in seconds, bandwidths in bytes/second and clocks in Hz,
/// so arithmetic in the cost model needs no unit conversions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, used in reports ("V100", "RTX 5000").
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SIMT width of a warp. 32 on every CUDA part.
    pub warp_size: u32,
    /// Execution lanes per SM (FP32/INT cores).
    pub lanes_per_sm: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Peak DRAM bandwidth in bytes per second.
    pub peak_bandwidth: f64,
    /// Fraction of peak bandwidth achievable by a well-tuned streaming
    /// kernel (HBM2 sustains ~0.80-0.85 of peak in practice).
    pub bandwidth_efficiency: f64,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Host-side latency of one kernel launch. The paper profiles this at
    /// about 60 us on the V100 (Section IV-B1) and uses it to justify
    /// Cooperative Groups over kernel-per-region synchronization. Not part
    /// of modeled kernel time — the paper measures with the CUDA profiler,
    /// which reports kernel *execution* durations.
    pub kernel_launch_latency: f64,
    /// Device-visible ramp of one kernel execution (scheduling the grid,
    /// draining the pipeline) — charged once per launch by the cost model.
    pub kernel_ramp: f64,
    /// Latency of one Cooperative-Groups grid-wide synchronization.
    pub grid_sync_latency: f64,
    /// Round-trip latency of a dependent global-memory access from a single
    /// thread (used to cost sequential, latency-bound regions).
    pub global_mem_latency: f64,
    /// Cost of one serialized conflicting global atomic update.
    pub global_atomic_serialization: f64,
    /// Cost of one serialized conflicting shared-memory atomic update.
    pub shared_atomic_serialization: f64,
    /// DRAM transaction (sector) size in bytes; uncoalesced accesses are
    /// rounded up to whole sectors.
    pub sector_bytes: usize,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (Volta, 16 GB HBM2 at 900 GB/s), as hosted on the
    /// Longhorn subsystem in the paper.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            sm_count: 80,
            warp_size: 32,
            lanes_per_sm: 64,
            max_threads_per_block: 1024,
            shared_mem_per_block: 96 * 1024,
            peak_bandwidth: 900.0e9,
            bandwidth_efficiency: 0.83,
            clock_hz: 1.53e9,
            kernel_launch_latency: 60.0e-6,
            kernel_ramp: 4.0e-6,
            grid_sync_latency: 1.5e-6,
            global_mem_latency: 350.0e-9,
            global_atomic_serialization: 18.0e-9,
            shared_atomic_serialization: 2.2e-9,
            sector_bytes: 32,
        }
    }

    /// NVIDIA Quadro RTX 5000 (Turing, 16 GB GDDR6 at 448 GB/s), as hosted
    /// on Frontera in the paper.
    pub fn rtx5000() -> Self {
        DeviceSpec {
            name: "RTX 5000",
            sm_count: 48,
            warp_size: 32,
            lanes_per_sm: 64,
            max_threads_per_block: 1024,
            shared_mem_per_block: 64 * 1024,
            peak_bandwidth: 448.0e9,
            bandwidth_efficiency: 0.80,
            clock_hz: 1.62e9,
            kernel_launch_latency: 55.0e-6,
            kernel_ramp: 4.5e-6,
            grid_sync_latency: 1.6e-6,
            global_mem_latency: 420.0e-9,
            global_atomic_serialization: 20.0e-9,
            shared_atomic_serialization: 2.5e-9,
            sector_bytes: 32,
        }
    }

    /// A small generic part for unit tests: round numbers, low launch
    /// latency so tests exercising the clock don't drown in constants.
    pub fn test_part() -> Self {
        DeviceSpec {
            name: "TestPart",
            sm_count: 4,
            warp_size: 32,
            lanes_per_sm: 32,
            max_threads_per_block: 1024,
            shared_mem_per_block: 48 * 1024,
            peak_bandwidth: 100.0e9,
            bandwidth_efficiency: 1.0,
            clock_hz: 1.0e9,
            kernel_launch_latency: 10.0e-6,
            kernel_ramp: 10.0e-6,
            grid_sync_latency: 1.0e-6,
            global_mem_latency: 400.0e-9,
            global_atomic_serialization: 20.0e-9,
            shared_atomic_serialization: 2.0e-9,
            sector_bytes: 32,
        }
    }

    /// Effective streaming bandwidth in bytes/second — the ceiling of the
    /// memory roofline (`[crate::roofline]` efficiency scores are achieved
    /// throughput divided by this figure).
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.bandwidth_efficiency
    }

    /// Total execution lanes on the device.
    pub fn total_lanes(&self) -> u64 {
        u64::from(self.sm_count) * u64::from(self.lanes_per_sm)
    }

    /// Aggregate scalar-op throughput in ops/second (one op per lane-cycle).
    pub fn op_throughput(&self) -> f64 {
        self.total_lanes() as f64 * self.clock_hz
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_spec_sheet() {
        let d = DeviceSpec::v100();
        assert_eq!(d.sm_count, 80);
        assert_eq!(d.warp_size, 32);
        assert!((d.peak_bandwidth - 900.0e9).abs() < 1.0);
        assert!((d.kernel_launch_latency - 60.0e-6).abs() < 1e-9);
    }

    #[test]
    fn rtx5000_has_lower_bandwidth_than_v100() {
        assert!(DeviceSpec::rtx5000().peak_bandwidth < DeviceSpec::v100().peak_bandwidth);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        for d in [DeviceSpec::v100(), DeviceSpec::rtx5000()] {
            assert!(d.effective_bandwidth() < d.peak_bandwidth);
            assert!(d.effective_bandwidth() > 0.5 * d.peak_bandwidth);
        }
    }

    #[test]
    fn total_lanes_and_throughput() {
        let d = DeviceSpec::test_part();
        assert_eq!(d.total_lanes(), 4 * 32);
        assert!((d.op_throughput() - 128.0e9).abs() < 1.0);
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(DeviceSpec::default().name, "V100");
    }
}
