//! Analytic kernel-time estimator.
//!
//! Translates a [`Traffic`] ledger into modeled seconds on a
//! [`DeviceSpec`]. The model is deliberately first-principles (spec-sheet
//! numbers only, no fitting to the paper's results):
//!
//! * **memory term** — DRAM sectors x sector size / effective bandwidth;
//! * **compute term** — scalar ops / device op throughput, inflated by the
//!   warp-divergence factor;
//! * **atomic term** — serialized conflicting updates at the per-conflict
//!   cost (global vs shared);
//! * **shared term** — shared-memory bytes at an aggregate on-chip
//!   bandwidth (an order of magnitude above DRAM);
//! * **latency term** — sequential dependent accesses each pay the full
//!   global-memory round trip (this is what makes "run the serial algorithm
//!   on one GPU thread" catastrophically slow, Section II-C);
//! * **sync term** — grid-wide synchronizations at Cooperative-Groups cost.
//!
//! The memory/compute terms overlap on a GPU, so the kernel time is
//! `launch + syncs + latency + atomics + max(mem, compute, shared)`.
//!
//! Each term's formula, the device constants it draws on, and a worked
//! example for the privatized-histogram kernel are documented in prose in
//! **DESIGN.md § "The cost model, term by term"** — keep that chapter and
//! the field docs on [`CostBreakdown`] in sync when changing the model.

use crate::device::DeviceSpec;
use crate::traffic::Traffic;
use serde::{Deserialize, Serialize};

/// Breakdown of one kernel's modeled execution time, in seconds.
///
/// Each field is one additive (or overlapped) term of the model; the
/// formulas and a worked example live in DESIGN.md § "The cost model,
/// term by term". The breakdown is carried on every
/// [`KernelRecord`](crate::KernelRecord) and exported verbatim by the
/// trace layer ([`crate::trace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Kernel-launch latency: `kernel_ramp`, charged once per launch
    /// (zero for fused device primitives).
    pub launch: f64,
    /// DRAM term: `dram_sectors × sector_bytes / effective_bandwidth`.
    pub memory: f64,
    /// Scalar-op term: `thread_ops × divergence_factor / op_throughput`.
    pub compute: f64,
    /// On-chip shared-memory movement term:
    /// `shared_bytes / (op_throughput × 4)`.
    pub shared: f64,
    /// Serialized atomic-conflict term:
    /// `conflicts × per-conflict serialization cost` (global and shared).
    pub atomics: f64,
    /// Latency-bound single-thread term:
    /// `sequential_dependent_accesses × global_mem_latency`.
    pub sequential_latency: f64,
    /// Cooperative-Groups grid-synchronization term:
    /// `grid_syncs × grid_sync_latency`.
    pub grid_syncs: f64,
    /// Total modeled kernel time:
    /// `launch + grid_syncs + sequential_latency + atomics +
    /// max(memory, compute, shared)`.
    pub total: f64,
}

impl CostBreakdown {
    /// The dominant overlapped term (memory vs compute vs shared).
    ///
    /// This only compares the three overlapped throughput terms; for the
    /// full four-way roofline classification that also weighs launch
    /// latency and contention, see [`crate::roofline::Counters`].
    pub fn bound(&self) -> &'static str {
        if self.memory >= self.compute && self.memory >= self.shared {
            "memory"
        } else if self.compute >= self.shared {
            "compute"
        } else {
            "shared"
        }
    }
}

/// Estimate the modeled time of a kernel given its traffic ledger.
///
/// `include_launch` is false for device primitives fused into an enclosing
/// kernel (the paper fuses ParMerge into GenerateCL to avoid the separate
/// launch). The charged figure is the device-visible `kernel_ramp` — the
/// paper measures with the CUDA profiler, which reports kernel execution
/// durations, not host launch gaps.
pub fn estimate(spec: &DeviceSpec, t: &Traffic, include_launch: bool) -> CostBreakdown {
    let launch = if include_launch { spec.kernel_ramp } else { 0.0 };

    let sectors = t.dram_sectors(spec.sector_bytes);
    let memory = (sectors * spec.sector_bytes as u64) as f64 / spec.effective_bandwidth();

    let divergence = if t.divergence_factor > 0.0 { t.divergence_factor } else { 1.0 };
    let compute = t.thread_ops as f64 * divergence / spec.op_throughput();

    // On-chip shared memory: aggregate bandwidth modeled as one 4-byte word
    // per lane-cycle plus serialized bank conflicts folded into atomics.
    let shared_bw = spec.op_throughput() * 4.0;
    let shared = t.shared_bytes as f64 / shared_bw;

    let atomics = t.global_atomic_conflicts as f64 * spec.global_atomic_serialization
        + t.shared_atomic_conflicts as f64 * spec.shared_atomic_serialization;

    let sequential_latency = t.sequential_dependent_accesses as f64 * spec.global_mem_latency;

    let grid_syncs = t.grid_syncs as f64 * spec.grid_sync_latency;

    let total =
        launch + grid_syncs + sequential_latency + atomics + memory.max(compute).max(shared);

    CostBreakdown {
        launch,
        memory,
        compute,
        shared,
        atomics,
        sequential_latency,
        grid_syncs,
        total,
    }
}

/// Throughput in bytes/second for processing `input_bytes` of payload in
/// `seconds` of modeled time.
pub fn throughput(input_bytes: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    input_bytes as f64 / seconds
}

/// Convenience: bytes/second -> GB/s (decimal, as the paper reports).
pub fn gbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Access;

    fn spec() -> DeviceSpec {
        DeviceSpec::test_part() // 100 GB/s, efficiency 1.0, 10 us launch
    }

    #[test]
    fn pure_streaming_kernel_is_memory_bound() {
        let mut t = Traffic::new();
        t.read(Access::Coalesced, 1 << 20, 4); // 4 MiB
        let c = estimate(&spec(), &t, true);
        assert_eq!(c.bound(), "memory");
        // 4 MiB at 100 GB/s ~ 42 us, plus 10 us launch.
        assert!((c.memory - (4.0 * 1048576.0 / 100.0e9)).abs() < 1e-9);
        assert!((c.total - (c.launch + c.memory)).abs() < 1e-12);
    }

    #[test]
    fn strided_writes_cost_8x_coalesced() {
        let mut co = Traffic::new();
        co.write(Access::Coalesced, 1 << 20, 4);
        let mut st = Traffic::new();
        st.write(Access::Strided, 1 << 20, 4);
        let s = spec();
        let tc = estimate(&s, &co, false).memory;
        let ts = estimate(&s, &st, false).memory;
        assert!((ts / tc - 8.0).abs() < 0.01, "ratio {}", ts / tc);
    }

    #[test]
    fn sequential_region_dominated_by_latency() {
        let mut t = Traffic::new();
        t.sequential(100_000);
        let c = estimate(&spec(), &t, true);
        assert!((c.sequential_latency - 100_000.0 * 400.0e-9).abs() < 1e-9);
        assert!(c.sequential_latency > c.memory);
    }

    #[test]
    fn divergence_scales_compute() {
        let mut t = Traffic::new();
        t.ops(1 << 30);
        let base = estimate(&spec(), &t, false).compute;
        t.diverge(2.0);
        let diverged = estimate(&spec(), &t, false).compute;
        assert!((diverged / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn launch_excluded_for_fused_primitives() {
        let t = Traffic::new();
        let with = estimate(&spec(), &t, true);
        let without = estimate(&spec(), &t, false);
        assert!((with.total - without.total - 10.0e-6).abs() < 1e-12);
    }

    #[test]
    fn atomic_conflicts_serialize() {
        let mut t = Traffic::new();
        t.shared_atomic(1000, 500);
        let c = estimate(&spec(), &t, false);
        assert!((c.atomics - 500.0 * 2.0e-9).abs() < 1e-15);
    }

    #[test]
    fn throughput_and_gbps() {
        assert!((gbps(throughput(1_000_000_000, 0.5)) - 2.0).abs() < 1e-9);
        assert!(throughput(1, 0.0).is_infinite());
    }

    #[test]
    fn per_bit_vs_per_symbol_decode_shapes_cross_over() {
        // The decoder crossover, at the ledger level (DESIGN.md § "Sync-pass
        // cost model"): a bit-serial decode kernel's compute term scales
        // with payload *bits* (~6 ops each, divergence 2), while a LUT
        // decode kernel's scales with *symbols* (~8 ops each, divergence
        // 1.2) plus a sync-pass kernel. With long codes (8 bits/symbol) the
        // per-bit kernel pays 96 op-equivalents per symbol vs ~19 for the
        // LUT pipeline; with near-1-bit codes both sit on the memory
        // roofline and the extra sync launch makes the LUT pipeline lose.
        let s = DeviceSpec::v100();
        let n: u64 = 4 << 20; // symbols
        let per_symbol = |avg_bits: u64| {
            let bits = n * avg_bits;
            let mut serial = Traffic::new();
            serial.read(Access::Coalesced, bits / 8, 1);
            serial.write(Access::Coalesced, n, 2);
            serial.ops(6 * bits);
            serial.diverge(2.0);
            let bit_serial = estimate(&s, &serial, true).total;

            let mut sync = Traffic::new();
            sync.read(Access::Strided, bits / 256, 32);
            sync.ops(5 * 2 * n); // ~2 passes over every codeword
            sync.diverge(2.0);
            let mut dec = Traffic::new();
            dec.read(Access::Coalesced, bits / 8, 1);
            dec.write(Access::Coalesced, n, 2);
            dec.ops(8 * n);
            dec.diverge(1.2);
            let lut = estimate(&s, &sync, true).total + estimate(&s, &dec, true).total;
            (bit_serial, lut)
        };
        let (serial_hi, lut_hi) = per_symbol(8);
        assert!(lut_hi < serial_hi, "high-entropy: lut {lut_hi} vs serial {serial_hi}");
        let (serial_lo, lut_lo) = per_symbol(1);
        assert!(lut_lo > serial_lo, "low-entropy: lut {lut_lo} vs serial {serial_lo}");
    }

    #[test]
    fn serial_codebook_motivation_scale() {
        // Section II-C: a serial 8192-symbol codebook construction on one
        // V100 thread takes ~144 ms. Our model: O(n log n) heap operations
        // with ~4 dependent accesses each.
        let n = 8192u64;
        let accesses = 4 * n * (n as f64).log2() as u64;
        let mut t = Traffic::new();
        t.sequential(accesses);
        let c = estimate(&DeviceSpec::v100(), &t, true);
        assert!(c.total > 0.05 && c.total < 0.5, "modeled {} s", c.total);
    }
}
