//! The full SZ-style error-bounded compression pipeline.
//!
//! Compression is a single causal sweep: for each sample (row-major),
//! predict from the *reconstructed* neighbours (Lorenzo), quantize the
//! residual, immediately reconstruct — so the decompressor, which replays
//! the same recurrence, sees identical predictions. Quantization codes are
//! entropy-coded with the reduce-shuffle Huffman encoder; unpredictable
//! samples go to a verbatim outlier list.
//!
//! This is exactly the setting Section II-A motivates: the quantization
//! codes need a *large* Huffman codebook (1024 bins by default here, up to
//! 65536), and the code distribution is the sharply peaked two-sided
//! geometric the `huff-datasets` Nyx-Quant generator imitates.

use crate::field::Field3;
use crate::predictor::lorenzo3;
use crate::quantizer::{Quantized, Quantizer};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use huff_core::archive;
use huff_core::encode::BreakingStrategy;
use huff_core::error::{HuffError, Result};

const MAGIC: &[u8; 4] = b"SZQ1";

/// Compression statistics for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressStats {
    /// Samples stored verbatim because their residual left the bin range.
    pub unpredictable: usize,
    /// Total samples.
    pub total: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio vs `f32` input.
    pub ratio: f64,
}

/// Compress a field under an absolute error bound with `num_bins`
/// quantization bins.
pub fn compress(
    field: &Field3,
    error_bound: f32,
    num_bins: usize,
) -> Result<(Vec<u8>, CompressStats)> {
    let quant = Quantizer::new(error_bound, num_bins);
    let n = field.len();

    // Causal sweep: quantize against reconstructed neighbours.
    let mut recon = Field3::zeros(field.nx, field.ny, field.nz);
    let mut codes: Vec<u16> = Vec::with_capacity(n);
    let mut outliers: Vec<(u64, f32)> = Vec::new();
    for z in 0..field.nz {
        for y in 0..field.ny {
            for x in 0..field.nx {
                let i = field.idx(x, y, z);
                let pred = lorenzo3(&recon, x, y, z);
                let residual = field.data[i] - pred;
                match quant.quantize(residual) {
                    Quantized::Code(c) => {
                        codes.push(c);
                        recon.data[i] = pred + quant.dequantize(c);
                    }
                    Quantized::Unpredictable => {
                        codes.push(Quantizer::UNPREDICTABLE);
                        outliers.push((i as u64, field.data[i]));
                        recon.data[i] = field.data[i];
                    }
                }
            }
        }
    }

    // Entropy-code the quantization codes. Code 0 (unpredictable marker)
    // participates like any other symbol.
    let mut opts = archive::CompressOptions::new(num_bins);
    opts.strategy = BreakingStrategy::SparseSidecar;
    opts.symbol_bytes = 2;
    let coded = archive::compress(&codes, &opts)?;

    // Container: header + outliers + Huffman archive.
    let mut buf = BytesMut::with_capacity(coded.len() + outliers.len() * 12 + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(field.nx as u32);
    buf.put_u32_le(field.ny as u32);
    buf.put_u32_le(field.nz as u32);
    buf.put_f32_le(error_bound);
    buf.put_u32_le(num_bins as u32);
    buf.put_u32_le(outliers.len() as u32);
    for &(i, v) in &outliers {
        buf.put_u64_le(i);
        buf.put_f32_le(v);
    }
    buf.put_u64_le(coded.len() as u64);
    buf.put_slice(&coded);

    let out = buf.to_vec();
    let stats = CompressStats {
        unpredictable: outliers.len(),
        total: n,
        compressed_bytes: out.len(),
        ratio: (n * 4) as f64 / out.len() as f64,
    };
    Ok((out, stats))
}

/// Decompress an archive back to a field; every sample is within the
/// stored error bound of the original.
pub fn decompress(archive_bytes: &[u8]) -> Result<Field3> {
    let mut buf = Bytes::copy_from_slice(archive_bytes);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(HuffError::BadArchive(format!("sz archive truncated: need {n} bytes")))
        } else {
            Ok(())
        }
    };

    need(&buf, 4 + 12 + 4 + 4 + 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HuffError::BadArchive("bad sz magic".into()));
    }
    let nx = buf.get_u32_le() as usize;
    let ny = buf.get_u32_le() as usize;
    let nz = buf.get_u32_le() as usize;
    let error_bound = buf.get_f32_le();
    let num_bins = buf.get_u32_le() as usize;
    if nx == 0 || ny == 0 || nz == 0 || !(4..=65536).contains(&num_bins) || error_bound <= 0.0 {
        return Err(HuffError::BadArchive("bad sz header".into()));
    }
    let n = nx
        .checked_mul(ny)
        .and_then(|v| v.checked_mul(nz))
        .ok_or_else(|| HuffError::BadArchive("field extents overflow".into()))?;

    let n_outliers = {
        need(&buf, 4)?;
        buf.get_u32_le() as usize
    };
    need(&buf, n_outliers * 12)?;
    let mut outliers = Vec::with_capacity(n_outliers);
    for _ in 0..n_outliers {
        let i = buf.get_u64_le();
        let v = buf.get_f32_le();
        outliers.push((i, v));
    }

    need(&buf, 8)?;
    let coded_len = buf.get_u64_le() as usize;
    need(&buf, coded_len)?;
    let coded = buf.copy_to_bytes(coded_len);
    let codes = archive::decompress(&coded)?;
    if codes.len() != n {
        return Err(HuffError::BadArchive(format!(
            "code count {} does not match field size {n}",
            codes.len()
        )));
    }

    // Replay the causal recurrence.
    let quant = Quantizer::new(error_bound, num_bins);
    let mut recon = Field3::zeros(nx, ny, nz);
    let mut outlier_iter = outliers.iter().peekable();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = recon.idx(x, y, z);
                let code = codes[i];
                if code == Quantizer::UNPREDICTABLE {
                    let &&(oi, ov) =
                        outlier_iter.peek().ok_or(HuffError::CorruptStream("missing outlier"))?;
                    if oi != i as u64 {
                        return Err(HuffError::CorruptStream("outlier index mismatch"));
                    }
                    outlier_iter.next();
                    recon.data[i] = ov;
                } else {
                    let pred = lorenzo3(&recon, x, y, z);
                    recon.data[i] = pred + quant.dequantize(code);
                }
            }
        }
    }
    Ok(recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field;

    #[test]
    fn roundtrip_within_error_bound() {
        let f = field::smooth_cosines(32, 32, 8, 4, 1);
        for eb in [0.1f32, 0.01, 0.001] {
            let (packed, stats) = compress(&f, eb, 1024).unwrap();
            let back = decompress(&packed).unwrap();
            let err = f.max_abs_diff(&back);
            assert!(err <= eb + 1e-5, "eb={eb}: max error {err}");
            assert_eq!(stats.total, f.len());
        }
    }

    #[test]
    fn smooth_field_compresses_well() {
        let f = field::smooth_cosines(64, 64, 4, 3, 2);
        let (_, stats) = compress(&f, 0.01, 1024).unwrap();
        assert!(stats.ratio > 4.0, "ratio {}", stats.ratio);
        assert!(stats.unpredictable < f.len() / 100);
    }

    #[test]
    fn tighter_bound_lower_ratio() {
        let f = field::smooth_cosines(48, 48, 4, 4, 3);
        let (_, loose) = compress(&f, 0.05, 1024).unwrap();
        let (_, tight) = compress(&f, 0.0005, 1024).unwrap();
        assert!(loose.ratio > tight.ratio, "{} vs {}", loose.ratio, tight.ratio);
    }

    #[test]
    fn noisy_field_still_bounded() {
        let f = field::noisy(24, 24, 4, 1.0, 4);
        let (packed, stats) = compress(&f, 0.02, 1024).unwrap();
        let back = decompress(&packed).unwrap();
        assert!(f.max_abs_diff(&back) <= 0.02 + 1e-5);
        // Rough data costs ratio, not correctness.
        assert!(stats.ratio > 0.5);
    }

    #[test]
    fn unpredictable_samples_stored_verbatim() {
        // A spike field: huge jumps exceed any small bin range.
        let mut f = field::smooth_cosines(16, 16, 1, 2, 5);
        let mid = f.idx(8, 8, 0);
        f.data[mid] += 1.0e6;
        let (packed, stats) = compress(&f, 0.001, 16).unwrap();
        assert!(stats.unpredictable > 0);
        let back = decompress(&packed).unwrap();
        assert!((back.data[mid] - f.data[mid]).abs() <= 0.001 + 1e-3);
    }

    #[test]
    fn small_bin_count_roundtrips() {
        let f = field::smooth_cosines(16, 16, 4, 3, 6);
        let (packed, _) = compress(&f, 0.01, 16).unwrap();
        let back = decompress(&packed).unwrap();
        assert!(f.max_abs_diff(&back) <= 0.01 + 1e-5);
    }

    #[test]
    fn corrupt_archives_fail_cleanly() {
        let f = field::smooth_cosines(8, 8, 2, 2, 7);
        let (packed, _) = compress(&f, 0.01, 256).unwrap();
        assert!(decompress(&packed[..10]).is_err());
        let mut bad = packed.clone();
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
        // Field-size header corruption must not panic.
        let mut bad2 = packed.clone();
        bad2[4] = 0xFF;
        let _ = decompress(&bad2);
    }

    #[test]
    fn code_distribution_matches_nyx_quant_shape() {
        // The central bin dominates on smooth data — the Table V Nyx-Quant
        // statistic (avg codeword ~1.03 bits) comes from exactly this.
        let f = field::smooth_cosines(64, 64, 8, 4, 8);
        let quant = Quantizer::new(0.05, 1024);
        let mut recon = Field3::zeros(f.nx, f.ny, f.nz);
        let mut centre = 0usize;
        let mut total = 0usize;
        for z in 0..f.nz {
            for y in 0..f.ny {
                for x in 0..f.nx {
                    let i = f.idx(x, y, z);
                    let pred = crate::predictor::lorenzo3(&recon, x, y, z);
                    match quant.quantize(f.data[i] - pred) {
                        Quantized::Code(c) => {
                            recon.data[i] = pred + quant.dequantize(c);
                            if i64::from(c) == quant.mid() {
                                centre += 1;
                            }
                        }
                        Quantized::Unpredictable => recon.data[i] = f.data[i],
                    }
                    total += 1;
                }
            }
        }
        assert!(
            centre as f64 / total as f64 > 0.3,
            "centre fraction {}",
            centre as f64 / total as f64
        );
    }
}
