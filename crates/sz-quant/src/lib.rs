//! # sz-quant — an SZ-style error-bounded lossy compression substrate
//!
//! The paper's Huffman encoder exists to serve error-bounded lossy
//! compressors (SZ / cuSZ): a predictor + quantizer turns floating-point
//! fields into integer quantization codes whose sharply peaked distribution
//! Huffman coding then exploits (Section II-A). This crate implements that
//! substrate end to end:
//!
//! * [`field::Field3`] — 3-D scalar fields + synthetic generators;
//! * [`predictor`] — Lorenzo prediction (1-D/3-D, boundary-degrading);
//! * [`quantizer`] — error-bounded linear quantization with an
//!   unpredictable-sample escape hatch;
//! * [`compress`] — the causal compress/decompress pipeline, entropy-coding
//!   the codes with `huff-core`'s reduce-shuffle encoder and guaranteeing
//!   `|x - x'| ≤ eb` pointwise.
//!
//! ```
//! use sz_quant::{compress::{compress, decompress}, field};
//!
//! let f = field::smooth_cosines(32, 32, 4, 3, 42);
//! let (packed, stats) = compress(&f, 0.01, 1024).unwrap();
//! assert!(stats.ratio > 2.0);
//! let back = decompress(&packed).unwrap();
//! assert!(f.max_abs_diff(&back) <= 0.01 + 1e-5);
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod field;
pub mod predictor;
pub mod quantizer;

pub use compress::{compress as compress_field, decompress as decompress_field, CompressStats};
pub use field::Field3;
pub use quantizer::Quantizer;
