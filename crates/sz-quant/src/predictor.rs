//! Lorenzo prediction.
//!
//! SZ's default predictor (Tao et al., IPDPS'17): each sample is predicted
//! from its already-processed neighbours —
//!
//! * 1-D: `p = f[x-1]`
//! * 2-D: `p = f[x-1,y] + f[x,y-1] - f[x-1,y-1]`
//! * 3-D: the inclusion-exclusion over the 7 preceding corner neighbours.
//!
//! During compression the neighbours must be the *reconstructed* values
//! (the decompressor only has those), which is why prediction and
//! quantization run as one causal sweep in [`crate::compress`].

use crate::field::Field3;

/// Lorenzo prediction at `(x, y, z)` using the values in `recon` (the
/// reconstructed-so-far buffer, same layout as the field). Out-of-domain
/// neighbours contribute 0, which makes the first sample's prediction 0 —
/// SZ stores it as a plain quantized offset the same way.
#[inline]
pub fn lorenzo3(recon: &Field3, x: usize, y: usize, z: usize) -> f32 {
    let g = |dx: usize, dy: usize, dz: usize| -> f32 {
        if x < dx || y < dy || z < dz {
            0.0
        } else {
            recon.get(x - dx, y - dy, z - dz)
        }
    };
    // Inclusion-exclusion over the preceding corner.
    g(1, 0, 0) + g(0, 1, 0) + g(0, 0, 1) - g(1, 1, 0) - g(1, 0, 1) - g(0, 1, 1) + g(1, 1, 1)
}

/// Pure-1-D Lorenzo (previous sample), for line data.
#[inline]
pub fn lorenzo1(recon: &[f32], i: usize) -> f32 {
    if i == 0 {
        0.0
    } else {
        recon[i - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field;

    #[test]
    fn first_sample_predicted_zero() {
        let f = Field3::zeros(4, 4, 4);
        assert_eq!(lorenzo3(&f, 0, 0, 0), 0.0);
        assert_eq!(lorenzo1(&[], 0), 0.0);
    }

    #[test]
    fn linear_field_predicted_exactly() {
        // Lorenzo is exact on (multi)linear fields: f = a + bx + cy + dz.
        let (nx, ny, nz) = (8, 8, 8);
        let mut f = Field3::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = f.idx(x, y, z);
                    f.data[i] = 1.5 + 2.0 * x as f32 - 0.5 * y as f32 + 0.25 * z as f32;
                }
            }
        }
        for z in 1..nz {
            for y in 1..ny {
                for x in 1..nx {
                    let p = lorenzo3(&f, x, y, z);
                    assert!((p - f.get(x, y, z)).abs() < 1e-4, "at ({x},{y},{z}): {p}");
                }
            }
        }
    }

    #[test]
    fn boundary_degrades_to_lower_dimension() {
        let mut f = Field3::zeros(4, 4, 1);
        for x in 0..4 {
            for y in 0..4 {
                let i = f.idx(x, y, 0);
                f.data[i] = (x + 10 * y) as f32;
            }
        }
        // On the x-axis (y = z = 0) the 3-D formula reduces to 1-D.
        assert_eq!(lorenzo3(&f, 2, 0, 0), f.get(1, 0, 0));
        // On the interior of the z=0 plane it is the 2-D Lorenzo.
        let expect = f.get(1, 2, 0) + f.get(2, 1, 0) - f.get(1, 1, 0);
        assert_eq!(lorenzo3(&f, 2, 2, 0), expect);
    }

    #[test]
    fn smooth_field_predicts_well() {
        let f = field::smooth_cosines(32, 32, 8, 4, 11);
        let (lo, hi) = f.range();
        let range = hi - lo;
        let mut worst = 0.0f32;
        for z in 1..8 {
            for y in 1..32 {
                for x in 1..32 {
                    worst = worst.max((lorenzo3(&f, x, y, z) - f.get(x, y, z)).abs());
                }
            }
        }
        assert!(worst < 0.2 * range, "worst residual {worst} of range {range}");
    }

    #[test]
    fn lorenzo1_is_previous() {
        let v = [3.0f32, 5.0, 7.0];
        assert_eq!(lorenzo1(&v, 1), 3.0);
        assert_eq!(lorenzo1(&v, 2), 5.0);
    }
}
