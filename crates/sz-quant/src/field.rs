//! 3-D scalar fields and synthetic generators.
//!
//! The paper's flagship workload is the quantization codes SZ produces
//! from Nyx's `baryon_density` — a smooth cosmological field. [`Field3`]
//! is the minimal container the predictor needs; the generators produce
//! smooth/turbulent fields with the qualitative structure of such data.

use serde::{Deserialize, Serialize};

/// A dense row-major 3-D scalar field (`z` slowest, `x` fastest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field3 {
    /// Extent in x (fastest-varying).
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z (slowest-varying).
    pub nz: usize,
    /// `nx * ny * nz` samples.
    pub data: Vec<f32>,
}

impl Field3 {
    /// A zero field of the given extents.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Field3 { nx, ny, nz, data: vec![0.0; nx * ny * nz] }
    }

    /// Wrap existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny * nz`.
    pub fn from_data(nx: usize, ny: usize, nz: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "field extents do not match data length");
        Field3 { nx, ny, nz, data }
    }

    /// A 1-D field (ny = nz = 1).
    pub fn line(data: Vec<f32>) -> Self {
        let nx = data.len();
        Field3::from_data(nx, 1, 1, data)
    }

    /// Flattened index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    /// Sample at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.idx(x, y, z)]
    }

    /// Total sample count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field has no samples (extents forbid this, but the
    /// clippy convention asks for it alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value range `(min, max)`; `(0, 0)` for all-NaN data.
    pub fn range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Maximum absolute pointwise difference to another field.
    pub fn max_abs_diff(&self, other: &Field3) -> f32 {
        assert_eq!(self.data.len(), other.data.len());
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

/// A smooth multi-mode cosine field — the structure of well-predicted
/// scientific data (density, temperature, pressure fields).
pub fn smooth_cosines(nx: usize, ny: usize, nz: usize, modes: usize, seed: u64) -> Field3 {
    let mut rng = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 33) as f64 / (1u64 << 31) as f64) as f32
    };
    let mode_params: Vec<[f32; 7]> = (0..modes.max(1))
        .map(|_| {
            [
                next() * 4.0 + 0.5,             // kx
                next() * 4.0 + 0.5,             // ky
                next() * 4.0 + 0.5,             // kz
                next() * std::f32::consts::TAU, // phase
                next() * 0.8 + 0.2,             // amplitude
                next(),                         // unused jitter seeds
                next(),
            ]
        })
        .collect();
    let mut f = Field3::zeros(nx, ny, nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let (fx, fy, fz) =
                    (x as f32 / nx as f32, y as f32 / ny as f32, z as f32 / nz as f32);
                let mut v = 0.0;
                for m in &mode_params {
                    v += m[4]
                        * (std::f32::consts::TAU * (m[0] * fx + m[1] * fy + m[2] * fz) + m[3])
                            .cos();
                }
                let i = f.idx(x, y, z);
                f.data[i] = v;
            }
        }
    }
    f
}

/// A rough field: smooth base plus per-sample noise of relative magnitude
/// `noise` — the hard-to-predict case where quantization codes spread over
/// many bins (large, deep codebooks; Section II-A).
pub fn noisy(nx: usize, ny: usize, nz: usize, noise: f32, seed: u64) -> Field3 {
    let mut f = smooth_cosines(nx, ny, nz, 5, seed);
    let mut rng = seed ^ 0xABCD;
    for v in &mut f.data {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let u = ((rng >> 33) as f64 / (1u64 << 31) as f64 - 0.5) as f32;
        *v += noise * u;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let f = Field3::zeros(4, 3, 2);
        assert_eq!(f.idx(0, 0, 0), 0);
        assert_eq!(f.idx(1, 0, 0), 1);
        assert_eq!(f.idx(0, 1, 0), 4);
        assert_eq!(f.idx(0, 0, 1), 12);
        assert_eq!(f.len(), 24);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "extents do not match")]
    fn mismatched_data_rejected() {
        let _ = Field3::from_data(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn smooth_field_is_smooth() {
        let f = smooth_cosines(64, 64, 1, 4, 7);
        // Neighbouring samples differ by far less than the value range.
        let (lo, hi) = f.range();
        let range = hi - lo;
        assert!(range > 0.1);
        let mut max_step = 0.0f32;
        for y in 0..64 {
            for x in 1..64 {
                max_step = max_step.max((f.get(x, y, 0) - f.get(x - 1, y, 0)).abs());
            }
        }
        assert!(max_step < range * 0.25, "max step {max_step} vs range {range}");
    }

    #[test]
    fn noisy_field_is_rougher() {
        let smooth = smooth_cosines(32, 32, 4, 4, 3);
        let rough = noisy(32, 32, 4, 0.5, 3);
        let step = |f: &Field3| -> f32 {
            let mut acc = 0.0;
            for i in 1..f.len() {
                acc += (f.data[i] - f.data[i - 1]).abs();
            }
            acc / (f.len() - 1) as f32
        };
        assert!(step(&rough) > step(&smooth));
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(smooth_cosines(8, 8, 8, 3, 1), smooth_cosines(8, 8, 8, 3, 1));
        assert_ne!(smooth_cosines(8, 8, 8, 3, 1), smooth_cosines(8, 8, 8, 3, 2));
    }

    #[test]
    fn range_and_diff() {
        let a = Field3::line(vec![1.0, -2.0, 3.0]);
        let b = Field3::line(vec![1.5, -2.0, 2.0]);
        assert_eq!(a.range(), (-2.0, 3.0));
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
