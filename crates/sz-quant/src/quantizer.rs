//! Error-bounded linear quantization of prediction residuals.
//!
//! SZ's error-controlled quantization: the residual `value - prediction`
//! is mapped to an integer code `round(residual / (2*eb)) + mid`, so the
//! reconstructed value `prediction + (code - mid) * 2*eb` is within `eb`
//! of the original. Residuals larger than the code range covers are
//! *unpredictable* and stored verbatim in an outlier list (code 0 is the
//! reserved unpredictable marker, matching SZ's convention).

use serde::{Deserialize, Serialize};

/// Quantizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Absolute error bound.
    pub error_bound: f32,
    /// Number of quantization bins (codebook size), e.g. SZ's default
    /// 65536 or cuSZ's 1024. Must be ≥ 4 and ≤ 65536.
    pub num_bins: usize,
}

/// Outcome of quantizing one residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// In-range code (1 ..= num_bins-1; 0 is reserved).
    Code(u16),
    /// Out of range: store the original value verbatim.
    Unpredictable,
}

impl Quantizer {
    /// A quantizer with the given absolute error bound and bin count.
    pub fn new(error_bound: f32, num_bins: usize) -> Self {
        assert!(error_bound > 0.0, "error bound must be positive");
        assert!((4..=65536).contains(&num_bins), "bins must be in [4, 65536]");
        Quantizer { error_bound, num_bins }
    }

    /// The centre bin (zero residual).
    #[inline]
    pub fn mid(&self) -> i64 {
        (self.num_bins / 2) as i64
    }

    /// Quantize a residual.
    #[inline]
    pub fn quantize(&self, residual: f32) -> Quantized {
        let step = 2.0 * self.error_bound;
        let q = (residual / step).round() as i64 + self.mid();
        if q >= 1 && q < self.num_bins as i64 {
            Quantized::Code(q as u16)
        } else {
            Quantized::Unpredictable
        }
    }

    /// Reconstruct the residual a code encodes.
    #[inline]
    pub fn dequantize(&self, code: u16) -> f32 {
        debug_assert!(code != 0, "code 0 is the unpredictable marker");
        (i64::from(code) - self.mid()) as f32 * 2.0 * self.error_bound
    }

    /// The unpredictable marker code.
    pub const UNPREDICTABLE: u16 = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_bound() {
        let q = Quantizer::new(0.01, 1024);
        for r in [-5.0f32, -0.5, -0.011, 0.0, 0.009, 0.5, 5.0] {
            match q.quantize(r) {
                Quantized::Code(c) => {
                    let back = q.dequantize(c);
                    assert!((back - r).abs() <= 0.01 + 1e-6, "residual {r} -> {back}");
                }
                Quantized::Unpredictable => {
                    assert!(r.abs() > 0.01 * 1000.0, "residual {r} should be in range");
                }
            }
        }
    }

    #[test]
    fn zero_residual_maps_to_mid() {
        let q = Quantizer::new(0.1, 256);
        assert_eq!(q.quantize(0.0), Quantized::Code(128));
        assert_eq!(q.dequantize(128), 0.0);
    }

    #[test]
    fn out_of_range_is_unpredictable() {
        let q = Quantizer::new(0.001, 16);
        assert_eq!(q.quantize(1.0), Quantized::Unpredictable);
        assert_eq!(q.quantize(-1.0), Quantized::Unpredictable);
    }

    #[test]
    fn code_zero_never_produced() {
        // The most negative in-range residual still maps to code >= 1.
        let q = Quantizer::new(0.5, 8);
        for milli in -5000..=5000 {
            let r = milli as f32 * 0.001;
            if let Quantized::Code(c) = q.quantize(r) {
                assert!(c >= 1, "residual {r} produced code 0");
            }
        }
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_bound_rejected() {
        let _ = Quantizer::new(0.0, 256);
    }

    #[test]
    fn bin_boundaries_exact() {
        let q = Quantizer::new(1.0, 64);
        // step = 2: residual 3.0 -> round(1.5)=2 -> code 34.
        assert_eq!(q.quantize(3.0), Quantized::Code(34));
        assert_eq!(q.dequantize(34), 4.0); // |4.0 - 3.0| = 1.0 = eb
    }
}
