//! Serve-mode acceptance for the tuning cache (`huff_core::tune` +
//! `huff_core::serve`).
//!
//! The contract: a serving engine with a tuner warms its tuning cache on
//! the first request for a workload signature and serves every repeat of
//! that signature from the cache — zero modeling cost, byte-identical
//! frames, and a visible hit counter in the metrics registry.

use huff::huff_core::metrics::registry;
use huff::huff_core::serve::{Engine, EngineConfig, Outcome, Request, Response};
use huff::huff_core::tune::{Tuner, MODEL_SWEEP_SECONDS};
use huff::prelude::*;
use huff::DeviceSpec;

fn workload(seed: u64) -> Vec<u16> {
    PaperDataset::Nci.generate(48_000, seed)
}

fn tuned_engine() -> Engine {
    let mut cfg = EngineConfig::new(256);
    cfg.batch.symbol_bytes = 2;
    Engine::new(cfg).with_tuner(Tuner::new(DeviceSpec::v100()))
}

fn frame_of(resp: &Response) -> &[u8] {
    match resp {
        Response::Frame(bytes) => bytes,
        other => panic!("expected a frame response, got {other:?}"),
    }
}

#[test]
fn second_identical_request_is_served_from_the_tuning_cache() {
    let hit_base = registry::global().get("rsh_tune_lookups_total", &[("result", "hit")]);
    let miss_base = registry::global().get("rsh_tune_lookups_total", &[("result", "miss")]);

    let mut eng = tuned_engine();
    let syms = workload(42);

    let first = eng.submit(Request::compress("r1", 0.0, syms.clone())).unwrap();
    assert!(matches!(first.outcome, Outcome::Success), "{:?}", first.outcome);
    let first_service = first.service;
    let first_frame = frame_of(first.response.as_ref().unwrap()).to_vec();

    let second = eng.submit(Request::compress("r2", 1.0, syms.clone())).unwrap();
    assert!(matches!(second.outcome, Outcome::Success), "{:?}", second.outcome);
    let second_service = second.service;
    let second_frame = frame_of(second.response.as_ref().unwrap()).to_vec();

    // Byte-identical frames: the cached decision replays the exact
    // geometry, not an equivalent one.
    assert_eq!(first_frame, second_frame);

    // The tuner modeled exactly once; the repeat hit the cache.
    let tuner = eng.tuner().expect("engine was built with a tuner");
    assert_eq!(tuner.misses, 1);
    assert_eq!(tuner.modeled_sweeps, 1);
    assert!(tuner.hits >= 1, "second request must hit the tuning cache");

    // Zero modeling cost on the hit: the second request's service time
    // drops by exactly the modeled sweep charge.
    let saved = first_service - second_service;
    assert!(
        (saved - MODEL_SWEEP_SECONDS).abs() < 1e-12,
        "expected the cache hit to save the {MODEL_SWEEP_SECONDS}s sweep, saved {saved}s"
    );

    // The registry shows the warm-up: one miss, at least one hit. (Scope
    // the registry guard: `global()` is a mutex and decompress below
    // records metrics of its own.)
    {
        let reg = registry::global();
        let hits = reg.get("rsh_tune_lookups_total", &[("result", "hit")]) - hit_base;
        let misses = reg.get("rsh_tune_lookups_total", &[("result", "miss")]) - miss_base;
        assert!(hits >= 1.0, "tune hit counter must advance, got {hits}");
        assert!(misses >= 1.0, "tune miss counter must advance, got {misses}");
    }

    // And the round-trip stays lossless through the tuned path.
    let back = huff::decompress(&first_frame).unwrap();
    assert_eq!(back, syms);
}

#[test]
fn distinct_workload_signatures_each_model_once() {
    // NyxQuant spans a 1024-symbol alphabet; size the engine's bins for it.
    let mut cfg = EngineConfig::new(1024);
    cfg.batch.symbol_bytes = 2;
    let mut eng = Engine::new(cfg).with_tuner(Tuner::new(DeviceSpec::v100()));
    let nci = workload(7);
    // A different entropy regime: near-uniform Nyx-style quantized data.
    let nyx = PaperDataset::NyxQuant.generate(48_000, 7);

    eng.submit(Request::compress("a1", 0.0, nci.clone())).unwrap();
    eng.submit(Request::compress("b1", 1.0, nyx.clone())).unwrap();
    eng.submit(Request::compress("a2", 2.0, nci)).unwrap();
    eng.submit(Request::compress("b2", 3.0, nyx)).unwrap();

    let tuner = eng.tuner().unwrap();
    assert_eq!(tuner.misses, 2, "two distinct signatures, two modeled sweeps");
    assert_eq!(tuner.modeled_sweeps, 2);
    assert_eq!(tuner.hits, 2, "each repeat must be a cache hit");
}

#[test]
fn untuned_engine_still_serves_and_reports_no_tuner() {
    let mut cfg = EngineConfig::new(256);
    cfg.batch.symbol_bytes = 2;
    let mut eng = Engine::new(cfg);
    assert!(eng.tuner().is_none());
    let syms = workload(3);
    let done = eng.submit(Request::compress("r", 0.0, syms.clone())).unwrap();
    assert!(matches!(done.outcome, Outcome::Success));
    let back = huff::decompress(frame_of(done.response.as_ref().unwrap())).unwrap();
    assert_eq!(back, syms);
}
