//! Trace-layer contract tests: the `rsh-trace-v1` schema, the Chrome
//! `trace_event` export, and the cost-attribution invariants FORMAT.md
//! promises.
//!
//! The vendored serde shim has no JSON *parser*, so this suite carries a
//! minimal recursive-descent parser (`json` module below) — enough to
//! check well-formedness and walk objects/arrays. The schema checks are
//! therefore end-to-end: they validate the serialized bytes, not the
//! in-memory structs.

use huff::gpu_sim::{DeviceSpec, Gpu};
use huff::huff_core::integrity::DecompressOptions;
use huff::huff_core::metrics::{self, PipelineProfile};

/// Minimal JSON DOM + recursive-descent parser for test assertions.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum J {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<J>),
        Obj(BTreeMap<String, J>),
    }

    impl J {
        pub fn get(&self, key: &str) -> &J {
            match self {
                J::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
                other => panic!("expected object for key {key:?}, got {other:?}"),
            }
        }
        pub fn arr(&self) -> &[J] {
            match self {
                J::Arr(v) => v,
                other => panic!("expected array, got {other:?}"),
            }
        }
        pub fn num(&self) -> f64 {
            match self {
                J::Num(n) => *n,
                other => panic!("expected number, got {other:?}"),
            }
        }
        pub fn str(&self) -> &str {
            match self {
                J::Str(s) => s,
                other => panic!("expected string, got {other:?}"),
            }
        }
        pub fn has(&self, key: &str) -> bool {
            matches!(self, J::Obj(m) if m.contains_key(key))
        }
    }

    pub fn parse(s: &str) -> Result<J, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, i))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<J, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(J::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", J::Bool(true)),
            Some(b'f') => lit(b, i, "false", J::Bool(false)),
            Some(b'n') => lit(b, i, "null", J::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: J) -> Result<J, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<J, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(J::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        expect(b, i, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(&c) => {
                    if c < 0x20 {
                        return Err(format!("raw control byte {c:#x} in string"));
                    }
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&b[*i..*i + ch_len]).map_err(|_| "bad utf8")?);
                    *i += ch_len;
                }
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<J, String> {
        expect(b, i, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(J::Arr(out));
        }
        loop {
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(J::Arr(out));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<J, String> {
        expect(b, i, b'{')?;
        let mut out = std::collections::BTreeMap::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(J::Obj(out));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            expect(b, i, b':')?;
            let v = value(b, i)?;
            out.insert(k, v);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(J::Obj(out));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

fn sample(n: usize) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 41;
            (x % 200) as u16
        })
        .collect()
}

fn roundtrip_profile() -> PipelineProfile {
    let gpu = Gpu::new(DeviceSpec::test_part());
    let data = sample(40_000);
    let (_, rec, profile) =
        metrics::profile_roundtrip(&gpu, &data, &metrics::ProfileOptions::new(256)).unwrap();
    assert_eq!(rec.symbols, data);
    profile
}

/// FORMAT.md § 3: every promised top-level, stage, kernel, and recovery
/// field is present with the right type — checked on the serialized
/// bytes, so renaming a field breaks this test before it breaks users.
#[test]
fn trace_schema_v1_fields_are_stable() {
    let profile = roundtrip_profile();
    let root = json::parse(&profile.to_json_string()).expect("trace JSON must parse");

    assert_eq!(root.get("schema").str(), "rsh-trace-v1");
    assert_eq!(root.get("direction").str(), "roundtrip");
    assert_eq!(root.get("device").str(), "TestPart");
    for key in [
        "input_bytes",
        "archive_bytes",
        "compression_ratio",
        "avg_bits",
        "reduction",
        "chunks",
        "breaking_fraction",
        "total_seconds",
    ] {
        assert!(root.get(key).num().is_finite(), "field {key}");
    }

    let stages = root.get("stages").arr();
    let names: Vec<&str> = stages.iter().map(|s| s.get("stage").str()).collect();
    assert_eq!(names, ["histogram", "codebook", "encode", "archive", "parse", "decode"]);
    for s in stages {
        for key in ["seconds", "kernels", "bytes_in", "bytes_out", "gbps"] {
            assert!(s.get(key).num().is_finite(), "stage field {key}");
        }
    }

    let kernels = root.get("kernels").arr();
    assert!(!kernels.is_empty());
    for k in kernels {
        assert!(!k.get("name").str().is_empty());
        assert!(k.get("stage").str() != "");
        for key in ["seq", "blocks", "threads_per_block", "start", "end"] {
            assert!(k.get(key).num().is_finite(), "kernel field {key}");
        }
        let cost = k.get("cost");
        for key in [
            "launch",
            "memory",
            "compute",
            "shared",
            "atomics",
            "sequential_latency",
            "grid_syncs",
            "total",
        ] {
            assert!(cost.get(key).num() >= 0.0, "cost term {key}");
        }
        assert!(k.get("traffic").has("read_coalesced"));
        assert!(k.get("traffic").has("divergence_factor"));
    }

    let recovery = root.get("recovery");
    assert_eq!(recovery.get("symbols_lost").num(), 0.0);
    assert!(recovery.get("damaged_chunks").arr().is_empty());
}

/// The acceptance invariant: per-kernel modeled times sum (within
/// rounding) to the stage totals, kernel records are attributed to
/// exactly one stage each, and timestamps are back-to-back monotonic.
#[test]
fn kernel_costs_sum_to_stage_totals_and_timestamps_are_monotonic() {
    let profile = roundtrip_profile();

    for stage in &profile.stages {
        let sum: f64 = profile
            .kernels
            .iter()
            .filter(|k| k.stage == stage.stage)
            .map(|k| k.record.cost.total)
            .sum();
        if stage.kernels > 0 {
            assert!(
                (sum - stage.seconds).abs() < 1e-12,
                "stage {}: kernels sum {sum} != stage {}",
                stage.stage,
                stage.seconds
            );
        } else {
            assert_eq!(sum, 0.0, "host stage {} must own no kernels", stage.stage);
        }
    }
    let attributed: usize = profile.stages.iter().map(|s| s.kernels).sum();
    assert_eq!(attributed, profile.kernels.len());

    // Records land back-to-back on the device clock: each start equals
    // the previous end, and durations equal cost totals.
    let mut prev_end: Option<f64> = None;
    for k in &profile.kernels {
        let r = &k.record;
        assert!(r.end >= r.start);
        assert!((r.end - r.start - r.cost.total).abs() < 1e-15);
        if let Some(prev) = prev_end {
            assert!((r.start - prev).abs() < 1e-15, "gap before {}", r.name);
        }
        prev_end = Some(r.end);
    }
}

/// The Chrome export is well-formed trace_event JSON: a traceEvents
/// array of "M"/"X" events, microsecond timestamps consistent with the
/// profile, and one named lane per device stage.
#[test]
fn chrome_trace_is_well_formed() {
    let profile = roundtrip_profile();
    let root = json::parse(&profile.to_chrome_trace()).expect("chrome JSON must parse");

    assert_eq!(root.get("displayTimeUnit").str(), "ms");
    let events = root.get("traceEvents").arr();
    assert!(!events.is_empty());

    let mut lanes = Vec::new();
    let mut slices = 0usize;
    for e in events {
        match e.get("ph").str() {
            "M" => {
                if e.get("name").str() == "thread_name" {
                    lanes.push(e.get("args").get("name").str().to_string());
                }
            }
            "X" => {
                slices += 1;
                assert!(e.get("ts").num() >= 0.0);
                assert!(e.get("dur").num() >= 0.0);
                assert_eq!(e.get("cat").str(), "kernel");
                let args = e.get("args");
                assert!(args.get("cost").has("total"));
                assert!(args.get("traffic").has("read_coalesced"));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(slices, profile.kernels.len());
    // One lane per *device* stage (host stages own no kernels).
    let device_stages: Vec<&str> =
        profile.stages.iter().filter(|s| s.kernels > 0).map(|s| s.stage).collect();
    assert_eq!(lanes, device_stages);

    // Slice timestamps are the profile's seconds in microseconds.
    let first_slice = events.iter().find(|e| e.get("ph").str() == "X").unwrap();
    let first_kernel = &profile.kernels[0].record;
    assert!((first_slice.get("ts").num() - first_kernel.start * 1e6).abs() < 1e-9);
}

/// Fixed seed -> byte-identical trace and Chrome JSON. Host stages are
/// modeled (not wall-clocked) precisely so this holds.
#[test]
fn profiles_are_byte_deterministic() {
    let a = roundtrip_profile();
    let b = roundtrip_profile();
    assert_eq!(a.to_json_string(), b.to_json_string());
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
}

/// The Prometheus exposition and the `rsh stats --json` export are
/// byte-deterministic: families and samples iterate in sorted (BTreeMap)
/// order, so the same events — in any order — render identical bytes.
/// `/metrics` in `rsh serve` and `rsh stats` both print these surfaces.
#[test]
fn metrics_exposition_is_byte_deterministic_and_sorted() {
    use huff::huff_core::metrics::registry::Registry;

    let mut a = Registry::new();
    a.record_request("success");
    a.record_request("shed");
    a.record_shed("queue_full");
    a.record_retries(3);
    a.record_degraded("chunked");
    a.record_deadline_miss();
    a.record_queue_wait(0.25, 3);
    a.record_shards_quarantined(2);
    a.record_compress(1000, 300, 3.3, 4);
    a.record_decode_backend("lut");

    // Same events, opposite order.
    let mut b = Registry::new();
    b.record_decode_backend("lut");
    b.record_compress(1000, 300, 3.3, 4);
    b.record_shards_quarantined(2);
    b.record_queue_wait(0.25, 3);
    b.record_deadline_miss();
    b.record_degraded("chunked");
    b.record_retries(3);
    b.record_shed("queue_full");
    b.record_request("shed");
    b.record_request("success");

    assert_eq!(a.render(), b.render(), "text exposition depends on event order");
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "JSON export depends on event order"
    );

    // Family names appear sorted in both surfaces.
    let text = a.render();
    let names: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("# HELP "))
        .map(|l| l.split_whitespace().nth(2).unwrap())
        .collect();
    assert!(!names.is_empty());
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "text families not sorted");

    let root = json::parse(&a.to_json().to_string()).unwrap();
    let jnames: Vec<String> =
        root.get("families").arr().iter().map(|f| f.get("name").str().to_string()).collect();
    let mut jsorted = jnames.clone();
    jsorted.sort();
    assert_eq!(jnames, jsorted, "JSON families not sorted");
}

/// Two identical seeded serve runs export byte-identical `rsh-trace-v1`
/// serve documents, and the document carries the schema/kind markers.
#[test]
fn serve_trace_export_is_byte_deterministic() {
    use huff::huff_core::serve::{ChaosConfig, Engine, EngineConfig, Request};

    let run = || {
        let mut cfg = EngineConfig::new(64);
        cfg.batch.shard_symbols = 4096;
        cfg.batch.devices = vec![DeviceSpec::test_part()];
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        let mut chaos = ChaosConfig::storm(5);
        chaos.device_loss_prob = 0.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        let syms: Vec<u16> = (0..8000).map(|i| (i % 50) as u16).collect();
        for i in 0..6 {
            eng.submit(Request::compress(format!("t{i}"), i as f64 * 20e-6, syms.clone())).unwrap();
        }
        eng.report().to_json().to_string()
    };
    let a = run();
    assert_eq!(a, run(), "serve trace export depends on run instance");

    let root = json::parse(&a).unwrap();
    assert_eq!(root.get("schema").str(), "rsh-trace-v1");
    assert_eq!(root.get("kind").str(), "serve");
    assert_eq!(root.get("requests").arr().len(), 6);
    assert!(root.get("counters").has("success") || root.get("counters").has("shed"));
}

/// Damage surfaces in the serialized recovery report.
#[test]
fn best_effort_trace_reports_damage_in_json() {
    use huff::huff_core::archive;
    use huff::huff_core::testing::{self, Fault};

    let gpu = Gpu::new(DeviceSpec::test_part());
    let data = sample(30_000);
    let (packed, _) =
        metrics::profile_compress(&gpu, &data, &metrics::ProfileOptions::new(256)).unwrap();
    let payload = archive::layout(&packed)
        .unwrap()
        .into_iter()
        .find(|(s, _)| *s == huff::huff_core::integrity::Section::Payload)
        .map(|(_, r)| r)
        .unwrap();
    let mut damaged = packed.clone();
    assert!(testing::apply(
        &mut damaged,
        &Fault::BitFlip { offset: payload.start + payload.len() / 3, bit: 2 }
    ));

    let (_, profile) =
        metrics::profile_decompress(&gpu, &damaged, &DecompressOptions::best_effort()).unwrap();
    let root = json::parse(&profile.to_json_string()).unwrap();
    assert_eq!(root.get("direction").str(), "decompress");
    let recovery = root.get("recovery");
    assert!(recovery.get("symbols_lost").num() > 0.0);
    assert!(!recovery.get("damaged_chunks").arr().is_empty());
    let ranges = recovery.get("damaged_ranges").arr();
    assert!(!ranges.is_empty());
    for r in ranges {
        let pair = r.arr();
        assert!(pair[0].num() < pair[1].num());
    }
}
