//! Property-based end-to-end tests (proptest): random histograms, random
//! data, random configurations — the invariants must hold for all of them.

use huff::huff_core::decode;
use huff::huff_core::encode::{self, BreakingStrategy, MergeConfig};
use huff::huff_core::{codebook, tree};
use huff::prelude::*;
use proptest::prelude::*;

/// Random data paired with a symbol space that covers it.
fn data_strategy() -> impl Strategy<Value = (Vec<u16>, usize)> {
    (2usize..200)
        .prop_flat_map(|space| (proptest::collection::vec(0..space as u16, 1..4000), Just(space)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn archive_roundtrip_any_data((data, space) in data_strategy()) {
        let packed = compress(&data, &CompressOptions::new(space)).unwrap();
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn reduce_shuffle_roundtrip_any_config(
        (data, space) in data_strategy(),
        m in 3u32..12,
        r_off in 1u32..6,
    ) {
        let r = r_off.min(m - 1);
        let freqs = huff::histogram::serial::histogram(&data, space);
        let book = codebook::parallel(&freqs, 4).unwrap();
        let stream = encode::reduce_shuffle::encode(
            &data, &book, MergeConfig::new(m, r), BreakingStrategy::SparseSidecar,
        ).unwrap();
        prop_assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), data);
    }

    #[test]
    fn parallel_codebook_always_optimal(
        freqs in proptest::collection::vec(1u64..1_000_000, 2..400)
    ) {
        let reference = tree::weighted_length(&freqs, &tree::codeword_lengths(&freqs).unwrap());
        let book = codebook::parallel(&freqs, 4).unwrap();
        prop_assert_eq!(tree::weighted_length(&freqs, &book.lengths()), reference);
        prop_assert_eq!(tree::kraft_sum(&book.lengths()), 1u128 << 64);
    }

    #[test]
    fn codebook_is_prefix_free(
        freqs in proptest::collection::vec(0u64..1000, 2..150)
    ) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        let book = codebook::parallel(&freqs, 4).unwrap();
        let coded: Vec<_> = book.codes().iter().filter(|c| !c.is_empty()).collect();
        for (i, a) in coded.iter().enumerate() {
            for (j, b) in coded.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_prefix_of(b), "{} prefixes {}", a, b);
                }
            }
        }
    }

    #[test]
    fn encoded_length_is_weighted_sum((data, space) in data_strategy()) {
        let freqs = huff::histogram::serial::histogram(&data, space);
        let book = codebook::parallel(&freqs, 4).unwrap();
        let enc = encode::serial::encode(&data, &book).unwrap();
        let expect: u64 = freqs.iter().enumerate()
            .map(|(s, &f)| f * u64::from(book.code(s as u16).len()))
            .sum();
        prop_assert_eq!(enc.bit_len, expect);
    }

    #[test]
    fn multithread_encode_bit_identical(
        (data, space) in data_strategy(),
        threads in 1usize..6,
        chunk in 1usize..500,
    ) {
        let freqs = huff::histogram::serial::histogram(&data, space);
        let book = codebook::parallel(&freqs, 4).unwrap();
        let serial = encode::serial::encode(&data, &book).unwrap();
        let mt = encode::multithread::encode(&data, &book, threads, chunk).unwrap();
        prop_assert_eq!(serial.bytes, mt.bytes);
        prop_assert_eq!(serial.bit_len, mt.bit_len);
    }

    #[test]
    fn merge_operator_equals_bitstream_append(
        codes in proptest::collection::vec((0u8..30, any::<u64>()), 0..8)
    ) {
        use huff::huff_core::bitstream::BitWriter;
        use huff::huff_core::codeword::{merge_all, Codeword};
        let codes: Vec<Codeword> = codes.into_iter()
            .map(|(len, bits)| {
                let len = u32::from(len);
                let bits = if len == 0 { 0 } else { bits & ((1u64 << len) - 1) };
                Codeword::new(bits, len)
            })
            .collect();
        let total: u32 = codes.iter().map(|c| c.len()).sum();
        prop_assume!(total <= 64);
        let merged = merge_all(&codes).unwrap();
        let mut w = BitWriter::new();
        for c in &codes { w.push_code(*c); }
        let mut w2 = BitWriter::new();
        w2.push_code(merged);
        prop_assert_eq!(w.finish(), w2.finish());
    }
}
