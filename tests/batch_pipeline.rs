//! End-to-end contract of the sharded multi-stream batch pipeline.
//!
//! Pins the PR's acceptance criteria:
//!
//! * a 2-stream double-buffered run over a 64 MB input models strictly
//!   faster than the same kernels back-to-back on one stream;
//! * per-stream invariants — attributed stage times sum to each stream's
//!   busy time, kernels on a stream never overlap, and the Chrome trace
//!   renders one lane per stream;
//! * the multi-shard frame decodes bit-exactly, including through
//!   best-effort recovery with one shard corrupted (only that shard's
//!   span is lost).

use huff::huff_core::archive;
use huff::huff_core::batch::{compress_batched, BatchOptions};
use huff::huff_core::frame;
use huff::huff_core::metrics;
use huff::prelude::*;

fn data(n: usize) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            (x % 256) as u16
        })
        .collect()
}

/// 64 MB of 2-byte symbols, 8 shards on 2 streams of one V100.
fn opts_64mb() -> (Vec<u16>, BatchOptions) {
    let n = 32 * 1024 * 1024;
    let mut opts = BatchOptions::new(256);
    opts.shard_symbols = n / 8;
    opts.streams = 2;
    (data(n), opts)
}

#[test]
fn two_stream_double_buffered_64mb_beats_serial_pipeline() {
    let (syms, opts) = opts_64mb();
    let (_, report) = compress_batched(&syms, &opts).unwrap();
    assert_eq!(report.input_bytes, 64 * 1024 * 1024);
    assert_eq!(report.shards.len(), 8);
    // The contended 2-stream makespan beats the same kernels serialized.
    assert!(
        report.makespan < report.serial_seconds,
        "makespan {} >= serial {}",
        report.makespan,
        report.serial_seconds
    );
    assert!(report.speedup() > 1.0);
}

#[test]
fn per_stream_invariants_hold_on_64mb_run() {
    let (syms, opts) = opts_64mb();
    let (frame_bytes, profile) = metrics::profile_compress_batched(&syms, &opts).unwrap();
    assert!(frame::is_frame(&frame_bytes));

    let tl = &profile.report.devices[0].timeline;
    for sm in &profile.streams {
        // Kernel-sum == stage-total per stream (contended times).
        assert!(
            (sm.stages.total() - sm.busy).abs() < 1e-12,
            "stream {}: stages {} vs busy {}",
            sm.stream,
            sm.stages.total(),
            sm.busy
        );
        // Kernels on one stream never overlap (FIFO queue semantics).
        let mut prev_end = 0.0f64;
        for r in tl.stream_records(sm.stream) {
            assert!(r.start >= prev_end - 1e-15, "stream {} overlaps itself", sm.stream);
            prev_end = r.end;
        }
    }
    // The Chrome trace renders one lane per stream.
    let chrome = profile.to_chrome_trace();
    for sm in &profile.streams {
        assert!(chrome.contains(&format!("stream {}", sm.stream)));
    }
}

#[test]
fn sharded_frame_roundtrips_bit_exactly() {
    let syms = data(300_000);
    let mut opts = BatchOptions::new(256);
    opts.shard_symbols = 70_000;
    opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
    let (frame_bytes, report) = compress_batched(&syms, &opts).unwrap();
    assert_eq!(report.shards.len(), 5);
    assert_eq!(archive::decompress(&frame_bytes).unwrap(), syms);
    // Strict and best-effort agree on a clean frame.
    let rec = decompress_with(&frame_bytes, &DecompressOptions::best_effort()).unwrap();
    assert_eq!(rec.symbols, syms);
    assert!(rec.report.is_clean());
}

#[test]
fn best_effort_recovers_all_but_the_corrupt_shard() {
    let syms = data(300_000);
    let mut opts = BatchOptions::new(256);
    opts.shard_symbols = 70_000;
    let (frame_bytes, _) = compress_batched(&syms, &opts).unwrap();
    let info = frame::parse(&frame_bytes, Verify::Full).unwrap();

    // Flip a payload byte deep inside shard 2's body.
    let mut corrupt = frame_bytes.clone();
    let r = &info.shard_ranges[2];
    corrupt[r.start + 3 * r.len() / 4] ^= 0x10;

    // Strict fails; best-effort recovers every other shard bit-exactly.
    assert!(archive::decompress(&corrupt).is_err());
    let rec = decompress_with(&corrupt, &DecompressOptions::best_effort()).unwrap();
    assert_eq!(rec.symbols.len(), syms.len());
    assert!(!rec.report.is_clean());
    let lost = info.shard_symbol_range(2).unwrap();
    for (i, (&got, &want)) in rec.symbols.iter().zip(&syms).enumerate() {
        if i < lost.start || i >= lost.end {
            assert_eq!(got, want, "symbol {i} outside the damaged shard changed");
        }
    }
    // The report localizes the loss inside shard 2's span.
    for &(s, e) in &rec.report.damaged_ranges {
        assert!(s >= lost.start && e <= lost.end, "damage [{s},{e}) outside shard 2 {lost:?}");
    }
    assert!(rec.report.symbols_lost > 0);
    assert!(rec.report.symbols_lost <= lost.len());
}

#[test]
fn multi_device_frame_is_deterministic_and_decodes() {
    let syms = data(250_000);
    let mut opts = BatchOptions::new(256);
    opts.shard_symbols = 40_000;
    opts.streams = 3;
    opts.devices = vec![DeviceSpec::v100(), DeviceSpec::rtx5000()];
    let (a, report) = compress_batched(&syms, &opts).unwrap();
    let (b, _) = compress_batched(&syms, &opts).unwrap();
    assert_eq!(a, b, "frame bytes depend on host scheduling");
    assert_eq!(report.devices.len(), 2);
    assert_eq!(archive::decompress(&a).unwrap(), syms);
    // Sharded output matches the unsharded archive's symbols (not bytes:
    // the containers differ), pinning shard-boundary correctness.
    let whole = compress(&syms, &CompressOptions::new(256)).unwrap();
    assert_eq!(decompress(&whole).unwrap(), archive::decompress(&a).unwrap());
}
