//! Archive container: format stability, corruption resistance, fuzzing.

use huff::huff_core::archive::{self, CompressOptions};
use huff::prelude::*;

fn sample(n: usize, seed: u64) -> Vec<u16> {
    PaperDataset::Nci.generate(n, seed)
}

#[test]
fn header_layout_is_stable() {
    let data = sample(10_000, 1);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    assert_eq!(&packed[..4], b"RSH2");
    assert_eq!(packed[4], 2); // symbol_bytes
    assert_eq!(packed[5], 10); // magnitude
    let r = packed[6];
    assert!((1..10).contains(&r));
}

#[test]
fn legacy_rsh1_archives_still_decompress() {
    // The seed code wrote RSH1 (no checksums); readers must keep
    // accepting it byte-for-byte.
    let data = sample(10_000, 1);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    let (stream, book, sb) = archive::deserialize(&packed).unwrap();
    let legacy = archive::serialize_v1(&stream, &book, sb).unwrap();
    assert_eq!(&legacy[..4], b"RSH1");
    assert!(legacy.len() < packed.len(), "v1 must be smaller (no checksums)");
    assert_eq!(archive::decompress(&legacy).unwrap(), data);
}

#[test]
fn bit_flips_never_panic() {
    let data = sample(5_000, 2);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    let mut rng = 0x12345u64;
    for _ in 0..300 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pos = (rng >> 33) as usize % packed.len();
        let bit = 1u8 << ((rng >> 29) & 7);
        let mut corrupt = packed.clone();
        corrupt[pos] ^= bit;
        // Must either fail cleanly or decode to *something* — never panic.
        match archive::decompress(&corrupt) {
            Ok(out) => {
                let _ = out.len();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn random_garbage_rejected() {
    let mut rng = 7u64;
    for len in [0usize, 1, 3, 4, 16, 100, 4096] {
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                rng = rng.wrapping_mul(48271);
                (rng >> 24) as u8
            })
            .collect();
        assert!(archive::decompress(&garbage).is_err(), "len={len}");
    }
}

#[test]
fn serialize_deserialize_preserves_everything() {
    let data = sample(60_000, 3);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    let (stream, book, sb) = archive::deserialize(&packed).unwrap();
    let repacked = archive::serialize(&stream, &book, sb).unwrap();
    assert_eq!(packed, repacked, "serialize/deserialize must be a bijection");
}

#[test]
fn archive_overhead_is_small() {
    // Header + codebook lengths + chunk table should be a small fraction
    // of the payload for MB-scale inputs.
    let data = sample(1_000_000, 4);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    let payload_bits: u64 = {
        let (stream, _, _) = archive::deserialize(&packed).unwrap();
        stream.total_bits
    };
    let overhead = packed.len() as f64 - payload_bits as f64 / 8.0;
    let frac = overhead / packed.len() as f64;
    assert!(frac < 0.08, "overhead {overhead} of {}", packed.len());
}

#[test]
fn breaking_heavy_archive_roundtrips() {
    // Force breaking units via a deep codebook and bursty data, then make
    // sure the sidecar survives serialization.
    let lengths: Vec<u32> = (1..=12).chain([12]).collect();
    let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
    let data: Vec<u16> = (0..100_000).map(|i| if i % 512 < 4 { 12u16 } else { 0 }).collect();
    let stream = huff::encode::reduce_shuffle::encode(
        &data,
        &book,
        MergeConfig::new(8, 4),
        BreakingStrategy::SparseSidecar,
    )
    .unwrap();
    assert!(!stream.outliers.is_empty());
    let packed = archive::serialize(&stream, &book, 2).unwrap();
    let restored = archive::decompress(&packed).unwrap();
    assert_eq!(restored, data);
}
