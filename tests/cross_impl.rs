//! Differential tests: every parallel implementation against its serial
//! reference, across sweeps of shapes and sizes.

use huff::huff_core::codebook::{self, multithread};
use huff::huff_core::histogram;
use huff::huff_core::tree;
use huff::Gpu;

fn lcg_freqs(n: usize, seed: u64, max: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % max + 1
        })
        .collect()
}

#[test]
fn codebook_constructions_all_optimal() {
    // serial (heap), parallel (GenerateCL/CW), multithread (two-queue),
    // GPU-launched parallel and serial: five constructions, one optimum.
    for (n, seed) in [(64usize, 1u64), (256, 2), (1024, 3), (4096, 4)] {
        let freqs = lcg_freqs(n, seed, 100_000);
        let reference = tree::weighted_length(&freqs, &tree::codeword_lengths(&freqs).unwrap());

        let serial = codebook::serial::build(&freqs).unwrap();
        assert_eq!(tree::weighted_length(&freqs, &serial.lengths()), reference, "serial n={n}");

        let par = codebook::parallel(&freqs, 8).unwrap();
        assert_eq!(tree::weighted_length(&freqs, &par.lengths()), reference, "parallel n={n}");

        for threads in [1, 4] {
            let mt = multithread::codeword_lengths(&freqs, threads).unwrap();
            assert_eq!(tree::weighted_length(&freqs, &mt), reference, "mt{threads} n={n}");
        }

        let gpu = Gpu::v100();
        let (gbook, _) = codebook::gpu::parallel_on_gpu(&gpu, &freqs).unwrap();
        assert_eq!(tree::weighted_length(&freqs, &gbook.lengths()), reference, "gpu n={n}");
        let (sbook, _) = codebook::gpu::serial_on_gpu(&gpu, &freqs).unwrap();
        assert_eq!(tree::weighted_length(&freqs, &sbook.lengths()), reference, "gpu-serial n={n}");
    }
}

#[test]
fn parallel_codebook_equals_from_lengths_exactly() {
    // The parallel builder must be a pure function of the lengths so that
    // archives reconstruct identical codes.
    let freqs = lcg_freqs(512, 9, 10_000);
    let par = codebook::parallel(&freqs, 8).unwrap();
    let rebuilt = huff::CanonicalCodebook::from_lengths(&par.lengths()).unwrap();
    assert_eq!(par, rebuilt);
    let gpu = Gpu::v100();
    let (gbook, _) = codebook::gpu::parallel_on_gpu(&gpu, &freqs).unwrap();
    assert_eq!(par, gbook);
}

#[test]
fn histograms_agree_across_backends() {
    let data: Vec<u16> =
        (0..500_000u64).map(|i| ((i.wrapping_mul(2654435761) >> 13) % 2048) as u16).collect();
    let serial = histogram::serial::histogram(&data, 2048);
    for threads in [2, 3, 8, 32] {
        assert_eq!(histogram::parallel_cpu::histogram(&data, 2048, threads), serial);
    }
    let gpu = Gpu::rtx5000();
    assert_eq!(histogram::gpu::histogram(&gpu, &data, 2048, 2), serial);
}

#[test]
fn generate_cl_optimal_on_adversarial_shapes() {
    // Shapes that historically break parallel Huffman constructions.
    let shapes: Vec<Vec<u64>> = vec![
        vec![1; 255],                                    // all ties
        (1..=64u64).map(|i| 1u64 << (i % 40)).collect(), // wild dynamic range
        vec![1, 1, 1, 1, 1_000_000_000],                 // one dominant
        (1..=100u64).collect(),                          // linear ramp
        {
            // Fibonacci: deepest possible tree.
            let mut v = vec![1u64, 1];
            for i in 2..40 {
                let x: u64 = v[i - 1] + v[i - 2];
                v.push(x);
            }
            v
        },
    ];
    for (i, mut freqs) in shapes.into_iter().enumerate() {
        freqs.sort_unstable();
        let reference = tree::weighted_length(&freqs, &tree::codeword_lengths(&freqs).unwrap());
        let (cl, _) = codebook::generate_cl(&freqs, 4);
        assert_eq!(tree::weighted_length(&freqs, &cl), reference, "shape {i}");
        assert_eq!(tree::kraft_sum(&cl), 1u128 << 64, "shape {i}");
    }
}

#[test]
fn multithread_encoder_error_and_boundary_behaviour() {
    let freqs = lcg_freqs(128, 10, 1000);
    let book = codebook::parallel(&freqs, 4).unwrap();
    let data: Vec<u16> = (0..10_000).map(|i| (i % 128) as u16).collect();
    let serial = huff::encode::serial::encode(&data, &book).unwrap();
    // Chunk size = 1 is the extreme boundary case.
    let mt = huff::encode::multithread::encode(&data, &book, 4, 1).unwrap();
    assert_eq!(mt.bytes, serial.bytes);
}
