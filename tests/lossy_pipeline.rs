//! Cross-crate integration: the sz-quant lossy pipeline over the Huffman
//! system — the "emerging application" of Section II-A, end to end.

use huff::sz_quant::compress::{compress, decompress};
use huff::sz_quant::field::{self, Field3};
use huff::sz_quant::quantizer::Quantizer;

#[test]
fn error_bound_holds_across_shapes_and_bounds() {
    for (nx, ny, nz, seed) in [(64usize, 64usize, 8usize, 1u64), (33, 17, 5, 2), (256, 1, 1, 3)] {
        let f = field::smooth_cosines(nx, ny, nz, 4, seed);
        for eb in [0.05f32, 0.002] {
            let (packed, _) = compress(&f, eb, 1024).unwrap();
            let back = decompress(&packed).unwrap();
            assert!(
                f.max_abs_diff(&back) <= eb + 1e-5,
                "{nx}x{ny}x{nz} eb={eb}: {}",
                f.max_abs_diff(&back)
            );
            assert_eq!((back.nx, back.ny, back.nz), (nx, ny, nz));
        }
    }
}

#[test]
fn quantization_codes_feed_large_codebooks() {
    // The motivating scenario: >256-symbol codebooks. Check the archive's
    // stored codebook really spans the requested bin count capacity.
    let f = field::noisy(48, 48, 8, 1.5, 4);
    for bins in [256usize, 1024, 4096] {
        let (packed, stats) = compress(&f, 0.0005, bins).unwrap();
        assert!(stats.ratio > 0.3);
        let back = decompress(&packed).unwrap();
        assert!(f.max_abs_diff(&back) <= 0.0005 + 1e-6, "bins={bins}");
    }
}

#[test]
fn smooth_fields_hit_nyx_quant_like_code_statistics() {
    // The Nyx-Quant column of Table V: sharply peaked codes, ~1-2-bit
    // Huffman average. Derive codes from a real Lorenzo sweep and check
    // the histogram statistic the paper reports.
    let f = field::smooth_cosines(96, 96, 16, 3, 5);
    let quant = Quantizer::new(0.05, 1024);
    let mut recon = Field3::zeros(f.nx, f.ny, f.nz);
    let mut codes = Vec::with_capacity(f.len());
    for z in 0..f.nz {
        for y in 0..f.ny {
            for x in 0..f.nx {
                let i = f.idx(x, y, z);
                let pred = huff::sz_quant::predictor::lorenzo3(&recon, x, y, z);
                match quant.quantize(f.data[i] - pred) {
                    huff::sz_quant::quantizer::Quantized::Code(c) => {
                        codes.push(c);
                        recon.data[i] = pred + quant.dequantize(c);
                    }
                    huff::sz_quant::quantizer::Quantized::Unpredictable => {
                        codes.push(0);
                        recon.data[i] = f.data[i];
                    }
                }
            }
        }
    }
    let freqs = huff::histogram::serial::histogram(&codes, 1024);
    let book = huff::codebook::parallel(&freqs, 8).unwrap();
    let avg = book.average_bitwidth(&freqs);
    assert!(avg < 3.0, "smooth-field quantization codes should be low-entropy, got {avg:.3} bits");
}

#[test]
fn lossy_archive_through_gpu_encoder() {
    // Full chain: field -> quantization codes -> device reduce-shuffle
    // encode -> chunked decode -> reconstruction within bound.
    let f = field::smooth_cosines(64, 64, 4, 4, 6);
    let eb = 0.01f32;
    let quant = Quantizer::new(eb, 1024);
    let mut recon = Field3::zeros(f.nx, f.ny, f.nz);
    let mut codes = Vec::with_capacity(f.len());
    let mut outliers = Vec::new();
    for z in 0..f.nz {
        for y in 0..f.ny {
            for x in 0..f.nx {
                let i = f.idx(x, y, z);
                let pred = huff::sz_quant::predictor::lorenzo3(&recon, x, y, z);
                match quant.quantize(f.data[i] - pred) {
                    huff::sz_quant::quantizer::Quantized::Code(c) => {
                        codes.push(c);
                        recon.data[i] = pred + quant.dequantize(c);
                    }
                    huff::sz_quant::quantizer::Quantized::Unpredictable => {
                        codes.push(0);
                        outliers.push((i, f.data[i]));
                        recon.data[i] = f.data[i];
                    }
                }
            }
        }
    }

    let gpu = huff::Gpu::v100();
    let (stream, book, _) =
        huff::pipeline::run(&gpu, &codes, 2, 1024, 10, None, huff::PipelineKind::ReduceShuffle)
            .unwrap();
    let decoded = huff::decode::chunked::decode(&stream, &book).unwrap();
    assert_eq!(decoded, codes);

    // Replay reconstruction from decoded codes.
    let mut out = Field3::zeros(f.nx, f.ny, f.nz);
    let mut outlier_iter = outliers.iter();
    for z in 0..f.nz {
        for y in 0..f.ny {
            for x in 0..f.nx {
                let i = out.idx(x, y, z);
                if decoded[i] == 0 {
                    let &(oi, ov) = outlier_iter.next().unwrap();
                    assert_eq!(oi, i);
                    out.data[i] = ov;
                } else {
                    let pred = huff::sz_quant::predictor::lorenzo3(&out, x, y, z);
                    out.data[i] = pred + quant.dequantize(decoded[i]);
                }
            }
        }
    }
    assert!(f.max_abs_diff(&out) <= eb + 1e-5);
}
