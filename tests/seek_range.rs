//! Random-access decode properties (ISSUE 9): for *any* input, *any*
//! container format, *any* decoder backend and *any* byte range,
//! [`huff_core::archive::decode_range`] returns exactly the bytes a full
//! decompress would have produced for that slice — the seek index is an
//! accelerator, never an oracle.
//!
//! The proptests sweep random data over both symbol widths, both
//! container shapes (single RSH2 archive and sharded RSHM frame), all
//! three decoder backends (host path and modeled-GPU path), and ranges
//! pinned to chunk boundaries — the off-by-one surface the succinct
//! index has to get right. The `#[ignore]` test at the bottom is the
//! full-size 64 MB acceptance run (release lane:
//! `cargo test --release -- --ignored`).

use huff::huff_core::archive::{self, CompressOptions};
use huff::huff_core::decode::gpu::decode_range_on_gpu;
use huff::huff_core::integrity::Section;
use huff::huff_core::{BatchOptions, DecoderKind, DecompressOptions};
use huff::{DeviceSpec, Gpu, PaperDataset};
use proptest::prelude::*;

/// The decoded byte stream a full decompress produces: little-endian
/// symbols at the archive's native width.
fn bytes_of(symbols: &[u16], symbol_bytes: u8) -> Vec<u8> {
    symbols
        .iter()
        .flat_map(|&s| u64::from(s).to_le_bytes()[..symbol_bytes as usize].to_vec())
        .collect()
}

/// Random data paired with a symbol space that covers it.
fn data_strategy() -> impl Strategy<Value = (Vec<u16>, usize)> {
    (2usize..200)
        .prop_flat_map(|space| (proptest::collection::vec(0..space as u16, 0..5000), Just(space)))
}

/// A random sub-range of `total` bytes, occasionally degenerate (empty)
/// or overhanging the end (`decode_range` clamps).
fn clamp_range(total: u64, a: u64, b: u64) -> std::ops::Range<u64> {
    let lo = if total == 0 { 0 } else { a % (total + 1) };
    let hi = if total == 0 { 0 } else { b % (total + 16) }; // may overhang
    lo.min(hi)..lo.max(hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RSH2 archives: any range, both symbol widths, every host backend.
    #[test]
    fn archive_range_is_a_slice_of_the_full_decode(
        (data, space) in data_strategy(),
        symbol_bytes in 1u8..=2,
        a in any::<u64>(),
        b in any::<u64>(),
        decoder_ix in 0usize..3,
    ) {
        let decoder = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut][decoder_ix];
        let mut copts = CompressOptions::new(space);
        copts.symbol_bytes = symbol_bytes;
        copts.magnitude = 8; // small chunks so ranges straddle several
        let packed = archive::compress(&data, &copts).unwrap();
        let full = bytes_of(&data, symbol_bytes);
        let range = clamp_range(full.len() as u64, a, b);
        let clamped = range.start as usize..(range.end as usize).min(full.len());

        let opts = DecompressOptions { decoder, ..DecompressOptions::default() };
        let r = archive::decode_range(&packed, range, &opts).unwrap();
        prop_assert_eq!(&r.bytes, &full[clamped], "{}", decoder.name());
        prop_assert!(r.chunks_touched <= r.total_chunks);
    }

    /// Sharded RSHM frames: the range decode recurses per covering shard
    /// and reassembles the same bytes.
    #[test]
    fn frame_range_is_a_slice_of_the_full_decode(
        (data, space) in data_strategy(),
        shards in 2usize..5,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mut opts = BatchOptions::new(space);
        opts.shard_symbols = (data.len() / shards).max(1);
        let (frame, _) = huff::compress_batched(&data, &opts).unwrap();
        let full = bytes_of(&data, 2);
        let range = clamp_range(full.len() as u64, a, b);
        let clamped = range.start as usize..(range.end as usize).min(full.len());

        let r = archive::decode_range(&frame, range, &DecompressOptions::default()).unwrap();
        prop_assert_eq!(&r.bytes, &full[clamped]);
    }

    /// The modeled-GPU range decode agrees with the host path bit for
    /// bit on every backend, and its kernel trace leads with the
    /// `dec_seek_probe` launch that prices the index lookups.
    #[test]
    fn gpu_range_decode_agrees_with_host_on_every_backend(
        (data, space) in data_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
        decoder_ix in 0usize..3,
    ) {
        let decoder = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut][decoder_ix];
        let mut copts = CompressOptions::new(space);
        copts.magnitude = 8;
        let packed = archive::compress(&data, &copts).unwrap();
        let full = bytes_of(&data, 2);
        let range = clamp_range(full.len() as u64, a, b);
        let opts = DecompressOptions { decoder, ..DecompressOptions::default() };

        let host = archive::decode_range(&packed, range.clone(), &opts).unwrap();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (dev, secs) = decode_range_on_gpu(&gpu, &packed, range, &opts, decoder).unwrap();
        prop_assert_eq!(&dev.bytes, &host.bytes);
        prop_assert_eq!(dev.chunks_touched, host.chunks_touched);
        prop_assert_eq!(dev.index_probes, host.index_probes);
        prop_assert!(secs >= 0.0);
        let records = gpu.clock().drain();
        prop_assert_eq!(records[0].name.as_str(), "dec_seek_probe");
        prop_assert_eq!(records[0].traffic.index_probe_ops, dev.index_probes);
    }

    /// Chunk-boundary endpoints: ranges that start or end exactly on a
    /// chunk's first decoded byte, one byte either side of it, and the
    /// empty range pinned on the boundary — the off-by-one surface of
    /// the index's rank/select arithmetic.
    #[test]
    fn chunk_boundary_endpoints_are_exact(
        (data, space) in data_strategy(),
        k in any::<usize>(),
        off in -1i64..=1,
    ) {
        let mut copts = CompressOptions::new(space);
        copts.magnitude = 8;
        let packed = archive::compress(&data, &copts).unwrap();
        let full = bytes_of(&data, 2);
        let chunks = archive::chunk_count(&packed).unwrap().max(1);
        // A chunk covers 2^magnitude symbols, so boundary k in
        // decoded-byte space is k * 2^8 * symbol_bytes.
        let boundary = ((k % (chunks + 1)) * (1 << 8) * 2) as u64;
        let boundary = boundary.min(full.len() as u64);
        let lo = boundary.saturating_add_signed(off).min(full.len() as u64);
        let opts = DecompressOptions::default();

        // Endpoint as range start, as range end, and the empty range.
        for range in [lo..full.len() as u64, 0..lo, lo..lo] {
            let clamped = range.start as usize..range.end as usize;
            let r = archive::decode_range(&packed, range, &opts).unwrap();
            prop_assert_eq!(&r.bytes, &full[clamped]);
        }
    }
}

/// The empty archive is a first-class citizen of the range path too.
#[test]
fn empty_archive_ranges_decode_empty() {
    let packed = archive::compress(&[], &CompressOptions::new(256)).unwrap();
    for range in [0..0, 0..u64::MAX] {
        let r = archive::decode_range(&packed, range, &DecompressOptions::default()).unwrap();
        assert!(r.bytes.is_empty());
        assert_eq!(r.chunks_touched, 0);
    }
}

/// The full-size acceptance run (ISSUE 9): on the 64 MB input, a 1 %
/// slice decodes bit-exactly through the seek index, touches only its
/// covering chunks (kernel-trace-verified), models ≥ 10× faster than the
/// full decode, and the index trailer costs ≤ 5 % of the archive. Slow
/// under `cargo test` (debug host decode of 64M symbols), so ignored by
/// default — run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "64 MB acceptance input; run with --release -- --ignored"]
fn accept_64mb_range_decode_is_o1_and_cheap() {
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let mut copts = CompressOptions::new(d.num_symbols());
    copts.symbol_bytes = d.symbol_bytes() as u8;
    copts.reduction = Some(d.paper_reduction());
    let packed = archive::compress(&data, &copts).unwrap();
    let full = bytes_of(&data, d.symbol_bytes() as u8);
    let total = full.len() as u64;

    // Index overhead: the trailer section against the whole archive.
    let sections = archive::layout(&packed).unwrap();
    let (_, idx) = sections.iter().find(|(s, _)| *s == Section::SeekIndex).unwrap();
    let overhead = idx.len() as f64 / packed.len() as f64;
    assert!(overhead <= 0.05, "seek index is {:.2}% of the archive", overhead * 100.0);

    let opts = DecompressOptions::default();
    let gpu = Gpu::v100();
    let (full_dec, full_secs) =
        decode_range_on_gpu(&gpu, &packed, 0..total, &opts, DecoderKind::Chunked).unwrap();
    assert_eq!(full_dec.bytes, full);
    let full_payload_reads: u64 =
        gpu.clock().drain().iter().map(|rec| rec.traffic.read_coalesced).sum();

    // An off-center, chunk-unaligned 1 % slice.
    let span = total / 100;
    let lo = (total - span) * 37 / 100;
    let gpu = Gpu::v100();
    let (r, range_secs) =
        decode_range_on_gpu(&gpu, &packed, lo..lo + span, &opts, DecoderKind::Chunked).unwrap();
    assert_eq!(r.bytes, &full[lo as usize..(lo + span) as usize]);
    assert!(r.index_used, "seek index must serve the lookup");
    assert!(
        r.chunks_touched as u64 <= r.total_chunks as u64 / 100 + 2,
        "touched {} of {} chunks for a 1% slice",
        r.chunks_touched,
        r.total_chunks
    );
    assert!(
        full_secs >= 10.0 * range_secs,
        "1% slice models {:.1}x, need >= 10x",
        full_secs / range_secs
    );

    // The kernel trace proves the decode read only the covering window.
    let records = gpu.clock().drain();
    assert_eq!(records[0].name.as_str(), "dec_seek_probe");
    assert_eq!(records[0].traffic.index_probe_ops, r.index_probes);
    let window_reads: u64 = records[1..].iter().map(|rec| rec.traffic.read_coalesced).sum();
    assert!(
        window_reads * 10 < full_payload_reads,
        "window read {window_reads} of {full_payload_reads} payload bytes"
    );
}
