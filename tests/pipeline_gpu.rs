//! Device-pipeline integration: the modeled performance relations the
//! paper's evaluation rests on must hold end-to-end.

use huff::huff_core::pipeline::{run, PipelineKind};
use huff::prelude::*;

fn nyx(n: usize) -> Vec<u16> {
    PaperDataset::NyxQuant.generate(n, 77)
}

#[test]
fn v100_beats_rtx5000_on_the_same_workload() {
    // Table V: every stage is faster on the higher-bandwidth V100.
    let data = nyx(4 << 20);
    let v100 = Gpu::v100();
    let (_, _, rv) = run(&v100, &data, 2, 1024, 10, Some(3), PipelineKind::ReduceShuffle).unwrap();
    let rtx = Gpu::rtx5000();
    let (_, _, rr) = run(&rtx, &data, 2, 1024, 10, Some(3), PipelineKind::ReduceShuffle).unwrap();
    assert!(rv.times.total() < rr.times.total());
    assert!(rv.encode_gbps() > rr.encode_gbps());
}

#[test]
fn ours_beats_both_baselines_at_scale() {
    let data = nyx(16 << 20);
    let ours = {
        let gpu = Gpu::v100();
        run(&gpu, &data, 2, 1024, 10, Some(3), PipelineKind::ReduceShuffle).unwrap().2
    };
    let cusz = {
        let gpu = Gpu::v100();
        run(&gpu, &data, 2, 1024, 10, None, PipelineKind::CuszCoarse).unwrap().2
    };
    let prefix = {
        let gpu = Gpu::v100();
        run(&gpu, &data, 2, 1024, 10, None, PipelineKind::PrefixSum).unwrap().2
    };
    assert!(
        ours.encode_gbps() > cusz.encode_gbps(),
        "{} vs {}",
        ours.encode_gbps(),
        cusz.encode_gbps()
    );
    assert!(
        ours.encode_gbps() > prefix.encode_gbps(),
        "{} vs {}",
        ours.encode_gbps(),
        prefix.encode_gbps()
    );
}

#[test]
fn codebook_stage_dominated_by_serial_in_cusz_baseline() {
    // Table III's effect at pipeline level: on a large codebook, the
    // baseline's codebook stage costs far more than ours.
    let data = {
        // 8192-symbol workload (5-mer-like histogram width).
        huff::huff_datasets::dna::kmer_dataset(2 << 20, 5, 3).0
    };
    let ours = {
        let gpu = Gpu::v100();
        run(&gpu, &data, 2, 8192, 10, None, PipelineKind::ReduceShuffle).unwrap().2
    };
    let cusz = {
        let gpu = Gpu::v100();
        run(&gpu, &data, 2, 8192, 10, None, PipelineKind::CuszCoarse).unwrap().2
    };
    assert!(
        cusz.times.codebook > 5.0 * ours.times.codebook,
        "cusz codebook {} vs ours {}",
        cusz.times.codebook,
        ours.times.codebook
    );
}

#[test]
fn breaking_fraction_is_tiny_on_real_shapes() {
    // Table V reports breaking between ~0% and 0.15%.
    for d in [PaperDataset::NyxQuant, PaperDataset::Enwik8, PaperDataset::Nci] {
        let data = d.generate(2 << 20, 13);
        let gpu = Gpu::v100();
        let (_, _, report) = run(
            &gpu,
            &data,
            d.symbol_bytes(),
            d.num_symbols(),
            10,
            Some(d.paper_reduction()),
            PipelineKind::ReduceShuffle,
        )
        .unwrap();
        assert!(
            report.breaking_fraction < 0.01,
            "{}: breaking {}",
            d.name(),
            report.breaking_fraction
        );
    }
}

#[test]
fn clock_records_full_kernel_set() {
    // Default plan is fully fused: one histogram kernel, no standalone
    // length/prefix kernel.
    let data = nyx(1 << 20);
    let gpu = Gpu::v100();
    let _ = run(&gpu, &data, 2, 1024, 10, Some(3), PipelineKind::ReduceShuffle).unwrap();
    let names: Vec<String> = gpu.clock().by_kernel().into_iter().map(|(n, _, _)| n).collect();
    for expect in [
        "hist_fused_reduction",
        "codebook_sort",
        "generate_cl",
        "generate_cw",
        "enc_reduce_merge",
        "enc_shuffle_merge",
        "enc_coalescing_copy",
        "enc_breaking_backtrace",
    ] {
        assert!(names.iter().any(|n| n == expect), "missing kernel {expect}: {names:?}");
    }
    for absent in ["hist_blockwise_reduction", "hist_gridwise_reduction", "enc_blockwise_len"] {
        assert!(!names.iter().any(|n| n == absent), "fused plan still launches {absent}");
    }
}

#[test]
fn clock_records_legacy_kernel_set_under_unfused_plan() {
    use huff::huff_core::pipeline::run_with_plan;
    use huff::huff_core::KernelPlan;
    let data = nyx(1 << 20);
    let gpu = Gpu::v100();
    let _ = run_with_plan(
        &gpu,
        &data,
        2,
        1024,
        10,
        Some(3),
        PipelineKind::ReduceShuffle,
        KernelPlan::unfused(),
    )
    .unwrap();
    let names: Vec<String> = gpu.clock().by_kernel().into_iter().map(|(n, _, _)| n).collect();
    for expect in [
        "hist_blockwise_reduction",
        "hist_gridwise_reduction",
        "codebook_sort",
        "generate_cl",
        "generate_cw",
        "enc_reduce_merge",
        "enc_shuffle_merge",
        "enc_blockwise_len",
        "enc_coalescing_copy",
        "enc_breaking_backtrace",
    ] {
        assert!(names.iter().any(|n| n == expect), "missing kernel {expect}: {names:?}");
    }
}

#[test]
fn reduction_factor_rule_matches_table5_assignments() {
    use huff::huff_core::entropy::decide_reduction_factor;
    // enwik* / mr / Flan -> r=2; nci -> r=3; Nyx -> r=4 by the rule
    // (the paper empirically overrides Nyx to 3 — Table II).
    assert_eq!(decide_reduction_factor(PaperDataset::Enwik8.paper_avg_bits(), 32, 10), 2);
    assert_eq!(decide_reduction_factor(PaperDataset::Mr.paper_avg_bits(), 32, 10), 2);
    assert_eq!(decide_reduction_factor(PaperDataset::Flan1565.paper_avg_bits(), 32, 10), 2);
    assert_eq!(decide_reduction_factor(PaperDataset::Nci.paper_avg_bits(), 32, 10), 3);
    assert_eq!(decide_reduction_factor(PaperDataset::NyxQuant.paper_avg_bits(), 32, 10), 4);
}
