//! Chaos acceptance suite for the serving engine (`huff_core::serve`).
//!
//! The engine's contract under injected faults — payload corruption,
//! device loss, decoder glitches, transient errors, 2× overload — is:
//!
//! 1. **Zero wrong bytes.** Every served response (success or degraded)
//!    is bit-exact outside the damage the recovery report declares.
//! 2. **Outcome partition.** Every request ends in exactly one of
//!    {success, degraded, shed, deadline, failed} — structured, never a
//!    panic or a silent drop.
//! 3. **Reconciliation.** The retry/shed/deadline/degradation counters
//!    in the engine's registry equal the tallies derived from the
//!    completion trace.
//! 4. **Bounded queueing.** Past the saturation knee the engine sheds;
//!    the admission queue never grows beyond its configured capacity.
//!
//! All runs are seeded and deterministic — the same seed replays the
//! same faults (`ChaosConfig`).

use huff::huff_core::serve::{ChaosConfig, Engine, EngineConfig, Outcome, Request, Response};
use huff::prelude::*;
use huff::{compress_batched, DeviceSpec};

fn sample(n: usize, seed: u64) -> Vec<u16> {
    PaperDataset::Nci.generate(n, seed)
}

fn small_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::new(256);
    cfg.batch.shard_symbols = 8192;
    cfg.batch.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
    cfg
}

/// Submit a mixed compress/decompress workload at the given arrival gap.
fn run_storm(seed: u64, gap_s: f64, requests: usize) -> (Engine, Vec<u16>, Vec<u8>) {
    let cfg = small_cfg();
    let syms = sample(24_000, seed);
    let (frame, _) = compress_batched(&syms, &cfg.batch).unwrap();
    let mut eng = Engine::with_chaos(cfg, ChaosConfig::storm(seed));
    for i in 0..requests {
        let t = i as f64 * gap_s;
        let req = if i % 2 == 0 {
            Request::compress(format!("c{i}"), t, syms.clone())
        } else {
            Request::decompress(format!("d{i}"), t, frame.clone()).with_deadline(0.5)
        };
        eng.submit(req).unwrap();
    }
    (eng, syms, frame)
}

#[test]
fn chaos_storm_never_serves_wrong_bytes() {
    for seed in [3u64, 17, 99] {
        let (eng, syms, frame) = run_storm(seed, 100e-6, 16);
        let report = eng.report();
        for c in &report.completions {
            assert!(
                !matches!(c.outcome, Outcome::Success) || c.response.is_some(),
                "seed {seed} {}: success without payload",
                c.trace_id
            );
            let Some(resp) = &c.response else { continue };
            match resp {
                Response::Frame(bytes) => {
                    // Device loss, retries, quarantine: the frame must
                    // still be bit-identical to the healthy bytes.
                    assert_eq!(
                        *bytes, frame,
                        "seed {seed} {}: compressed frame differs",
                        c.trace_id
                    );
                }
                Response::Symbols(out) => {
                    assert_eq!(out.len(), syms.len(), "seed {seed} {}", c.trace_id);
                    for (i, (&got, &want)) in out.iter().zip(&syms).enumerate() {
                        let damaged = c.recovery.as_ref().is_some_and(|r| {
                            r.damaged_ranges.iter().any(|&(s, e)| i >= s && i < e)
                        });
                        if !damaged {
                            assert_eq!(
                                got, want,
                                "seed {seed} {}: wrong byte at {i} outside reported damage",
                                c.trace_id
                            );
                        }
                    }
                }
                // The storm submits no range requests, so a byte-slice
                // response can only be a dispatch bug.
                Response::Bytes(_) => {
                    panic!("seed {seed} {}: unexpected range response", c.trace_id)
                }
            }
        }
    }
}

#[test]
fn every_request_ends_in_exactly_one_outcome() {
    for seed in [3u64, 17, 99] {
        let (eng, _, _) = run_storm(seed, 50e-6, 20);
        let report = eng.report();
        assert_eq!(report.completions.len(), 20, "seed {seed}: dropped requests");
        let total: usize = ["success", "degraded", "shed", "deadline", "failed"]
            .iter()
            .map(|l| report.count(l))
            .sum();
        assert_eq!(total, 20, "seed {seed}: outcome labels do not partition the trace");
        // Structured errors carry their reason.
        for c in &report.completions {
            match &c.outcome {
                Outcome::Shed { reason } => assert_eq!(reason, "queue_full"),
                Outcome::DeadlineMiss { budget, needed } => {
                    assert!(needed > budget, "seed {seed}: miss without overrun")
                }
                Outcome::Failed { error } => assert!(!error.is_empty()),
                _ => {}
            }
        }
    }
}

#[test]
fn counters_reconcile_with_the_trace() {
    for seed in [3u64, 17, 99] {
        let (eng, _, _) = run_storm(seed, 50e-6, 20);
        let report = eng.report();
        assert!(
            report.reconciles_with(eng.metrics()),
            "seed {seed}: registry counters diverge from the completion trace"
        );
    }
}

#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    // Measure the modeled service time, then offer 2× the engine's
    // capacity: the queue must cap at its configured depth and excess
    // requests must shed.
    let mut cfg = small_cfg();
    cfg.workers = 2;
    cfg.queue_capacity = 4;
    let syms = sample(24_000, 7);
    let mut probe = Engine::new(cfg.clone());
    let service = probe.submit(Request::compress("probe", 0.0, syms.clone())).unwrap().service;

    // 2× overload: arrivals at half the per-worker service interval.
    let gap = service / (2.0 * cfg.workers as f64) / 2.0;
    let mut eng = Engine::new(cfg.clone());
    for i in 0..40 {
        eng.submit(Request::compress(format!("t{i}"), i as f64 * gap, syms.clone())).unwrap();
    }
    let report = eng.report();
    assert!(report.count("shed") > 0, "2x overload never shed");
    assert!(
        report.max_depth <= cfg.queue_capacity,
        "queue depth {} exceeded capacity {}",
        report.max_depth,
        cfg.queue_capacity
    );
    // Everything that was admitted still succeeded bit-exactly.
    assert_eq!(report.count("success") + report.count("shed"), 40);
}

#[test]
fn chaos_replays_are_deterministic() {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let (eng, _, _) = run_storm(42, 50e-6, 12);
            eng.report().to_json().to_string()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same seed must replay the same faults and outcomes");
}
