//! Chaos acceptance suite for the serving engine (`huff_core::serve`).
//!
//! The engine's contract under injected faults — payload corruption,
//! device loss, decoder glitches, transient errors, 2× overload — is:
//!
//! 1. **Zero wrong bytes.** Every served response (success or degraded)
//!    is bit-exact outside the damage the recovery report declares.
//! 2. **Outcome partition.** Every request ends in exactly one of
//!    {success, degraded, shed, deadline, failed} — structured, never a
//!    panic or a silent drop.
//! 3. **Reconciliation.** The retry/shed/deadline/degradation counters
//!    in the engine's registry equal the tallies derived from the
//!    completion trace.
//! 4. **Bounded queueing.** Past the saturation knee the engine sheds;
//!    the admission queue never grows beyond its configured capacity.
//!
//! All runs are seeded and deterministic — the same seed replays the
//! same faults (`ChaosConfig`).

use huff::huff_core::serve::{ChaosConfig, Engine, EngineConfig, Outcome, Request, Response};
use huff::prelude::*;
use huff::{compress_batched, DeviceSpec};

fn sample(n: usize, seed: u64) -> Vec<u16> {
    PaperDataset::Nci.generate(n, seed)
}

fn small_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::new(256);
    cfg.batch.shard_symbols = 8192;
    cfg.batch.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
    cfg
}

/// Submit a mixed compress/decompress workload at the given arrival gap.
fn run_storm(seed: u64, gap_s: f64, requests: usize) -> (Engine, Vec<u16>, Vec<u8>) {
    let cfg = small_cfg();
    let syms = sample(24_000, seed);
    let (frame, _) = compress_batched(&syms, &cfg.batch).unwrap();
    let mut eng = Engine::with_chaos(cfg, ChaosConfig::storm(seed));
    for i in 0..requests {
        let t = i as f64 * gap_s;
        let req = if i % 2 == 0 {
            Request::compress(format!("c{i}"), t, syms.clone())
        } else {
            Request::decompress(format!("d{i}"), t, frame.clone()).with_deadline(0.5)
        };
        eng.submit(req).unwrap();
    }
    (eng, syms, frame)
}

#[test]
fn chaos_storm_never_serves_wrong_bytes() {
    for seed in [3u64, 17, 99] {
        let (eng, syms, frame) = run_storm(seed, 100e-6, 16);
        let report = eng.report();
        for c in &report.completions {
            assert!(
                !matches!(c.outcome, Outcome::Success) || c.response.is_some(),
                "seed {seed} {}: success without payload",
                c.trace_id
            );
            let Some(resp) = &c.response else { continue };
            match resp {
                Response::Frame(bytes) => {
                    // Device loss, retries, quarantine: the frame must
                    // still be bit-identical to the healthy bytes.
                    assert_eq!(
                        *bytes, frame,
                        "seed {seed} {}: compressed frame differs",
                        c.trace_id
                    );
                }
                Response::Symbols(out) => {
                    assert_eq!(out.len(), syms.len(), "seed {seed} {}", c.trace_id);
                    for (i, (&got, &want)) in out.iter().zip(&syms).enumerate() {
                        let damaged = c.recovery.as_ref().is_some_and(|r| {
                            r.damaged_ranges.iter().any(|&(s, e)| i >= s && i < e)
                        });
                        if !damaged {
                            assert_eq!(
                                got, want,
                                "seed {seed} {}: wrong byte at {i} outside reported damage",
                                c.trace_id
                            );
                        }
                    }
                }
                // The storm submits no range requests, so a byte-slice
                // response can only be a dispatch bug.
                Response::Bytes(_) => {
                    panic!("seed {seed} {}: unexpected range response", c.trace_id)
                }
            }
        }
    }
}

#[test]
fn every_request_ends_in_exactly_one_outcome() {
    for seed in [3u64, 17, 99] {
        let (eng, _, _) = run_storm(seed, 50e-6, 20);
        let report = eng.report();
        assert_eq!(report.completions.len(), 20, "seed {seed}: dropped requests");
        let total: usize = ["success", "degraded", "shed", "deadline", "failed"]
            .iter()
            .map(|l| report.count(l))
            .sum();
        assert_eq!(total, 20, "seed {seed}: outcome labels do not partition the trace");
        // Structured errors carry their reason.
        for c in &report.completions {
            match &c.outcome {
                Outcome::Shed { reason } => assert_eq!(reason, "queue_full"),
                Outcome::DeadlineMiss { budget, needed } => {
                    assert!(needed > budget, "seed {seed}: miss without overrun")
                }
                Outcome::Failed { error } => assert!(!error.is_empty()),
                _ => {}
            }
        }
    }
}

#[test]
fn counters_reconcile_with_the_trace() {
    for seed in [3u64, 17, 99] {
        let (eng, _, _) = run_storm(seed, 50e-6, 20);
        let report = eng.report();
        assert!(
            report.reconciles_with(eng.metrics()),
            "seed {seed}: registry counters diverge from the completion trace"
        );
    }
}

#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    // Measure the modeled service time, then offer 2× the engine's
    // capacity: the queue must cap at its configured depth and excess
    // requests must shed.
    let mut cfg = small_cfg();
    cfg.workers = 2;
    cfg.queue_capacity = 4;
    let syms = sample(24_000, 7);
    let mut probe = Engine::new(cfg.clone());
    let service = probe.submit(Request::compress("probe", 0.0, syms.clone())).unwrap().service;

    // 2× overload: arrivals at half the per-worker service interval.
    let gap = service / (2.0 * cfg.workers as f64) / 2.0;
    let mut eng = Engine::new(cfg.clone());
    for i in 0..40 {
        eng.submit(Request::compress(format!("t{i}"), i as f64 * gap, syms.clone())).unwrap();
    }
    let report = eng.report();
    assert!(report.count("shed") > 0, "2x overload never shed");
    assert!(
        report.max_depth <= cfg.queue_capacity,
        "queue depth {} exceeded capacity {}",
        report.max_depth,
        cfg.queue_capacity
    );
    // Everything that was admitted still succeeded bit-exactly.
    assert_eq!(report.count("success") + report.count("shed"), 40);
}

#[test]
fn chaos_replays_are_deterministic() {
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let (eng, _, _) = run_storm(42, 50e-6, 12);
            eng.report().to_json().to_string()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same seed must replay the same faults and outcomes");
}

#[test]
fn span_and_slo_exports_replay_byte_identical() {
    // The tracing layer is part of the deterministic-replay contract:
    // two runs of the same seeded storm must serialize byte-identical
    // `rsh-span-v1` JSONL and `rsh-slo-v1` JSON.
    let runs: Vec<(String, String)> = (0..2)
        .map(|_| {
            let (eng, _, _) = run_storm(42, 50e-6, 12);
            (
                eng.span_jsonl(),
                eng.slo_report(&huff::huff_core::slo::default_objectives()).to_json().to_string(),
            )
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0, "rsh-span-v1 export must replay byte-identical");
    assert_eq!(runs[0].1, runs[1].1, "rsh-slo-v1 export must replay byte-identical");
    assert!(runs[0].0.lines().all(|l| l.starts_with("{\"schema\":\"rsh-span-v1\"")));
}

#[test]
fn chaos_faults_burn_error_budget_as_attributed_events() {
    // Under the storm, injected faults must show up twice: as span
    // events attributed to the owning request's trace, and as error-
    // budget burn in the SLO report — never as silent degradation.
    let (eng, _, _) = run_storm(42, 50e-6, 20);
    let names: Vec<&str> = eng.spans().events().iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.iter().any(
            |n| ["device_loss", "deadline_miss", "retry", "decoder_glitch", "shed"].contains(n)
        ),
        "storm produced no attributed fault events: {names:?}"
    );
    // Every event is attributed to a span of the same trace.
    for e in eng.spans().events() {
        let root = eng.spans().root_of(&e.trace_id).expect("event on unknown trace");
        assert_eq!(root.trace_id, e.trace_id);
    }
    let slo = eng.slo_report(&huff::huff_core::slo::default_objectives());
    let burned: Vec<_> = slo.statuses.iter().filter(|s| s.burn_rate > 0.0).collect();
    assert!(!burned.is_empty(), "storm faults must burn some error budget");
    for s in burned {
        assert!(s.worst.is_some(), "burning objective must carry an exemplar trace");
    }
}

#[test]
fn p999_exemplar_resolves_to_a_tiling_span_tree() {
    // The tail exemplar is only useful if it leads somewhere: the trace
    // id on the p999 bucket must resolve to a span tree whose stage
    // spans tile the request's recorded latency exactly.
    let (eng, _, _) = run_storm(17, 50e-6, 20);
    for class in eng.latency().classes() {
        let hist = eng.latency().class(class);
        let Some(exemplar) = hist.exemplar(0.999).map(String::from) else { continue };
        let root = eng
            .spans()
            .root_of(&exemplar)
            .unwrap_or_else(|| panic!("{class} p999 exemplar {exemplar} has no span tree"));
        let c = eng
            .report()
            .completions
            .iter()
            .find(|c| c.trace_id == exemplar)
            .cloned()
            .expect("exemplar must match a completion");
        let latency = c.queue_wait + c.backoff + c.service;
        let stage_sum: f64 = eng
            .spans()
            .children(root.span_id)
            .iter()
            .filter(|s| s.kind == "stage")
            .map(|s| s.duration())
            .sum();
        assert!(
            (root.duration() - latency).abs() < 1e-9,
            "{class}/{exemplar}: root span {} != recorded latency {latency}",
            root.duration()
        );
        assert!(
            (stage_sum - latency).abs() < 1e-9,
            "{class}/{exemplar}: stage spans sum to {stage_sum}, latency {latency}"
        );
    }
}

mod span_attribution {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Tentpole acceptance: every kernel span emitted while serving
        /// a request belongs to that request's span tree (parent chain
        /// reaches the request root of the same trace), and span ids
        /// never collide across concurrent requests.
        #[test]
        fn kernel_spans_belong_to_their_request_and_ids_never_collide(
            seed in 0u64..512,
            requests in 4usize..12,
        ) {
            let (eng, _, _) = run_storm(seed, 50e-6, requests);
            let submitted: std::collections::HashSet<String> = (0..requests)
                .map(|i| if i % 2 == 0 { format!("c{i}") } else { format!("d{i}") })
                .collect();
            let by_id: std::collections::HashMap<u64, _> =
                eng.spans().spans().iter().map(|s| (s.span_id, s)).collect();
            prop_assert_eq!(
                by_id.len(),
                eng.spans().spans().len(),
                "span ids collided across concurrent requests"
            );
            for s in eng.spans().spans() {
                prop_assert!(
                    submitted.contains(&s.trace_id),
                    "span {} carries unknown trace {}", s.span_id, s.trace_id
                );
                // Walk the parent chain: same trace all the way to a root.
                let mut cur = s;
                while let Some(pid) = cur.parent_span_id {
                    let parent = by_id[&pid];
                    prop_assert_eq!(&parent.trace_id, &s.trace_id,
                        "span {} crosses into trace {}", s.span_id, parent.trace_id);
                    cur = parent;
                }
                prop_assert_eq!(cur.kind, "request");
            }
        }

        /// The same attribution holds one layer down: kernel records
        /// from a traced batch run are stamped with the batch's trace id.
        #[test]
        fn batched_kernel_records_are_stamped_with_the_trace(seed in 0u64..512) {
            let mut opts = small_cfg().batch;
            opts.trace = format!("prop-{seed}");
            let syms = sample(16_000, seed);
            let (_, report) = compress_batched(&syms, &opts).unwrap();
            let records: Vec<_> =
                report.devices.iter().flat_map(|d| d.timeline.records.iter()).collect();
            prop_assert!(!records.is_empty());
            for r in records {
                prop_assert_eq!(&r.trace, &opts.trace);
            }
        }
    }
}
