//! Roofline + registry contract tests: the `rsh-roofline-v1` schema, the
//! counter invariants DESIGN.md promises (stall shares partition modeled
//! time, efficiency never exceeds the roofline), the anomaly flag, and
//! the service-registry reconciliation `rsh stats` relies on.
//!
//! Tests that touch the process-wide registry (directly or by running a
//! pipeline entry point, which records into it as a side effect) hold
//! [`lock`] so parallel tests can't interleave their counter deltas.

use std::sync::{Mutex, MutexGuard, OnceLock};

use huff::gpu_sim::roofline::Bound;
use huff::gpu_sim::{Access, DeviceSpec, Gpu, GridDim};
use huff::huff_core::archive::{self, CompressOptions};
use huff::huff_core::batch::{compress_batched, BatchOptions};
use huff::huff_core::decode::DecoderKind;
use huff::huff_core::integrity::DecompressOptions;
use huff::huff_core::metrics::{self, registry, roofline::RooflineReport, PipelineProfile};
use serde_json::Value;

/// Serialize access to the global registry (and to the profilers that
/// record into it).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let m = LOCK.get_or_init(|| Mutex::new(()));
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn sample(n: usize) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 41;
            (x % 200) as u16
        })
        .collect()
}

fn roundtrip_profile(n: usize, opts: metrics::ProfileOptions) -> PipelineProfile {
    let gpu = Gpu::new(DeviceSpec::test_part());
    let data = sample(n);
    let (_, rec, profile) = metrics::profile_roundtrip(&gpu, &data, &opts).unwrap();
    assert_eq!(rec.symbols, data);
    profile
}

fn obj<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .unwrap_or_else(|| panic!("expected object holding {key:?}"))
        .get(key)
        .unwrap_or_else(|| panic!("missing key {key:?}"))
}

/// FORMAT.md § roofline: every promised field of `rsh-roofline-v1` is
/// present with the right type — checked on the serialized bytes.
#[test]
fn roofline_schema_v1_fields_are_stable() {
    let _g = lock();
    let profile = roundtrip_profile(40_000, metrics::ProfileOptions::new(256));
    let report = profile.roofline(0.5);
    let root = Value::parse(&report.to_json_string()).expect("roofline JSON must parse");

    assert_eq!(obj(&root, "schema").as_str(), Some("rsh-roofline-v1"));
    assert_eq!(obj(&root, "direction").as_str(), Some("roundtrip"));
    assert_eq!(obj(&root, "device").as_str(), Some("TestPart"));
    for key in ["threshold", "peak_gbps", "effective_gbps"] {
        assert!(obj(&root, key).as_f64().unwrap().is_finite(), "field {key}");
    }
    assert!(obj(&root, "anomalies").as_i128().is_some());

    let kernels = obj(&root, "kernels").as_array().unwrap();
    assert!(!kernels.is_empty());
    for k in kernels {
        assert!(!obj(k, "name").as_str().unwrap().is_empty());
        assert!(!obj(k, "stage").as_str().unwrap().is_empty());
        assert!(obj(k, "seq").as_i128().is_some());
        assert!(obj(k, "seconds").as_f64().unwrap() >= 0.0);
        assert!(obj(k, "anomaly").as_bool().is_some());
        let c = obj(k, "counters");
        for key in [
            "achieved_gbps",
            "peak_fraction",
            "efficiency",
            "occupancy",
            "divergence_fraction",
            "launch_share",
            "sync_share",
            "latency_share",
            "atomic_share",
            "contention_share",
            "throughput_share",
        ] {
            assert!(obj(c, key).as_f64().unwrap().is_finite(), "counter {key}");
        }
        assert!(obj(c, "logical_bytes").as_i128().unwrap() >= 0);
        let bound = obj(c, "bound").as_str().unwrap();
        assert!(
            ["memory", "compute", "latency", "contention"].contains(&bound),
            "unknown bound {bound:?}"
        );
    }

    let stages = obj(&root, "stages").as_array().unwrap();
    assert!(!stages.is_empty());
    for s in stages {
        assert!(!obj(s, "stage").as_str().unwrap().is_empty());
        assert!(obj(s, "kernels").as_i128().unwrap() > 0, "kernel-less stages are excluded");
        for key in ["seconds", "achieved_gbps", "efficiency"] {
            assert!(obj(s, key).as_f64().unwrap().is_finite(), "stage field {key}");
        }
        assert!(obj(s, "anomalies").as_i128().is_some());
        assert!(obj(s, "bound").as_str().is_some());
    }
}

/// The counter invariants: stall shares partition each kernel's modeled
/// time exactly, efficiency stays on or under the roofline, occupancy
/// and divergence are fractions, and the stage aggregates reconcile with
/// their kernels.
#[test]
fn counter_and_stage_invariants_hold() {
    let _g = lock();
    let profile = roundtrip_profile(40_000, metrics::ProfileOptions::new(256));
    let report = profile.roofline(0.5);

    for k in &report.kernels {
        let c = &k.counters;
        assert!(
            c.efficiency >= 0.0 && c.efficiency <= 1.0 + 1e-9,
            "{}: efficiency {} outside [0, 1]",
            k.name,
            c.efficiency
        );
        assert!(c.peak_fraction <= c.efficiency + 1e-12, "{}: peak > effective", k.name);
        if k.seconds > 0.0 {
            assert!(
                (c.share_sum() - 1.0).abs() < 1e-9,
                "{}: stall shares sum to {}, not 1",
                k.name,
                c.share_sum()
            );
        } else {
            assert!(c.share_sum() <= 1.0 + 1e-9);
        }
        assert!(c.occupancy > 0.0 && c.occupancy <= 1.0, "{}: occupancy {}", k.name, c.occupancy);
        assert!(
            (0.0..1.0).contains(&c.divergence_fraction),
            "{}: divergence {}",
            k.name,
            c.divergence_fraction
        );
    }

    for s in &report.stages {
        let rows: Vec<_> = report.kernels.iter().filter(|k| k.stage == s.stage).collect();
        assert_eq!(rows.len(), s.kernels, "stage {} kernel count", s.stage);
        let sum: f64 = rows.iter().map(|k| k.seconds).sum();
        assert!((sum - s.seconds).abs() < 1e-12, "stage {} seconds", s.stage);
        if s.logical_bytes > 0 {
            assert!(
                s.efficiency > 0.0 && s.efficiency <= 1.0 + 1e-9,
                "stage {}: efficiency {} outside (0, 1]",
                s.stage,
                s.efficiency
            );
        }
        assert_eq!(rows.iter().filter(|k| k.anomaly).count(), s.anomalies);
    }
    let stage_anomalies: usize = report.stages.iter().map(|s| s.anomalies).sum();
    assert_eq!(report.anomalies(), stage_anomalies);
}

/// A synthetic strided kernel wastes 7/8 of every sector: it classifies
/// memory-bound yet sits far under the roofline, which is exactly the
/// shape the anomaly flag exists for.
#[test]
fn anomaly_fires_on_synthetic_strided_kernel() {
    let spec = DeviceSpec::test_part();
    let gpu = Gpu::new(spec.clone());
    let n: u64 = 1 << 22;
    gpu.launch("strided_gather", GridDim::cover(n as usize, 256), |scope| {
        scope.traffic().read(Access::Strided, n, 4);
    });
    let clock = gpu.clock();
    let c = clock.records()[0].counters(&spec);
    assert_eq!(c.bound, Bound::Memory);
    assert!(c.efficiency < 0.5, "strided kernel should miss the roofline: {}", c.efficiency);
    // The report-level predicate: throughput-classified below threshold.
    assert!(matches!(c.bound, Bound::Memory | Bound::Contention) && c.efficiency < 0.5);
}

/// Threshold sweep on a real profile: at threshold 0 nothing can flag;
/// at a threshold above the best kernel, every throughput-bound kernel
/// flags. Latency-bound kernels never flag at any threshold.
#[test]
fn anomaly_threshold_bounds_the_flagged_set() {
    let _g = lock();
    // Large enough that the streaming kernels amortize their launch ramp
    // and classify memory-bound on the test part.
    let profile = roundtrip_profile(1_000_000, metrics::ProfileOptions::new(256));

    let none = RooflineReport::from_profile(&profile, 0.0);
    assert_eq!(none.anomalies(), 0);

    let all = RooflineReport::from_profile(&profile, 1.0);
    let throughput_bound = all
        .kernels
        .iter()
        .filter(|k| matches!(k.counters.bound, Bound::Memory | Bound::Contention))
        .count();
    assert!(throughput_bound > 0, "profile should have memory-bound kernels");
    assert_eq!(all.anomalies(), throughput_bound);
    for k in &all.kernels {
        if matches!(k.counters.bound, Bound::Latency | Bound::Compute) {
            assert!(!k.anomaly, "{}: latency/compute kernels never flag", k.name);
        }
    }
}

/// The paper's shape on the modeled device: the reduce/shuffle merge
/// kernels ride the bandwidth roofline (memory-bound, ≥ 0.5 of peak),
/// while the bit-serial decoder classifies latency-bound — its time is
/// a dependent-bit chain, not a bandwidth problem.
#[test]
fn merge_kernels_ride_roofline_and_serial_decode_is_latency_bound() {
    let _g = lock();
    // Merge kernels need a large input to amortize the launch ramp; the
    // bit-serial decoder is latency-bound at any size, so it gets a
    // smaller (cheaper) run of its own.
    let profile = roundtrip_profile(1_000_000, metrics::ProfileOptions::new(256));
    let report = profile.roofline(0.5);

    for name in ["enc_reduce_merge", "enc_shuffle_merge"] {
        let k = report
            .kernels
            .iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("{name} missing from profile"));
        assert_eq!(k.counters.bound, Bound::Memory, "{name} should be memory-bound");
        assert!(
            k.counters.peak_fraction >= 0.5,
            "{name} at {:.3} of peak, expected >= 0.5",
            k.counters.peak_fraction
        );
        assert!(!k.anomaly);
    }

    let serial =
        roundtrip_profile(100_000, metrics::ProfileOptions::new(256).decoder(DecoderKind::Serial));
    let serial_report = serial.roofline(0.5);
    let dec = serial_report.kernels.iter().find(|k| k.name == "dec_serial").expect("dec_serial");
    assert_eq!(dec.counters.bound, Bound::Latency);
    assert!(dec.counters.latency_share > 0.5);
    assert!(!dec.anomaly, "latency-bound kernels are never flagged");
}

/// The full-size acceptance run (ISSUE 5): on the 64 MB input, modeled on
/// the V100, every encode kernel classifies and the merge kernels hold
/// ≥ 0.5 of peak bandwidth. Slow under `cargo test` (debug host encode of
/// 64M symbols), so ignored by default — run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "64 MB acceptance input; run with --release -- --ignored"]
fn accept_64mb_encode_kernels_classify_on_v100() {
    let _g = lock();
    use huff::PaperDataset;
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let gpu = Gpu::v100();
    let opts = metrics::ProfileOptions::new(d.num_symbols())
        .symbol_bytes(d.symbol_bytes())
        .reduction(d.paper_reduction());
    let (_, profile) = metrics::profile_compress(&gpu, &data, &opts).unwrap();
    let report = profile.roofline(0.5);

    for k in &report.kernels {
        assert!(!k.counters.bound.name().is_empty());
    }
    for name in ["enc_reduce_merge", "enc_shuffle_merge"] {
        let k = report.kernels.iter().find(|k| k.name == name).expect(name);
        assert!(k.counters.peak_fraction >= 0.5, "{name}: {}", k.counters.peak_fraction);
    }
}

/// The kernel-fusion acceptance claim (ISSUE 8): at the 64 MB scale the
/// fused histogram and the shuffle merge carrying the fused length
/// epilogue are off the latency wall, and the compacted backtrace is no
/// longer anomaly-flagged — its writes are coalesced, so whatever it
/// classifies, it is not a random-scatter memory kernel missing the
/// roofline. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "64 MB acceptance input; run with --release -- --ignored"]
fn accept_64mb_fused_kernels_leave_the_latency_wall() {
    let _g = lock();
    use huff::huff_core::KernelPlan;
    use huff::PaperDataset;
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);

    let gpu = Gpu::v100();
    let opts = metrics::ProfileOptions::new(d.num_symbols())
        .symbol_bytes(d.symbol_bytes())
        .reduction(d.paper_reduction())
        .plan(KernelPlan::fused());
    let (_, profile) = metrics::profile_compress(&gpu, &data, &opts).unwrap();
    let report = profile.roofline(0.5);

    for name in ["hist_fused_reduction", "enc_shuffle_merge"] {
        let k = report.kernels.iter().find(|k| k.name == name).expect(name);
        assert_ne!(
            k.counters.bound,
            Bound::Latency,
            "{name} still latency-bound at 64 MB: {:?}",
            k.counters
        );
    }
    // The fused plan launches neither of the latency-bound kernels the
    // roofline flagged in PR 5.
    for absent in ["hist_gridwise_reduction", "enc_blockwise_len"] {
        assert!(
            !report.kernels.iter().any(|k| k.name == absent),
            "{absent} launched under the fused plan"
        );
    }
    let bt = report
        .kernels
        .iter()
        .find(|k| k.name == "enc_breaking_backtrace")
        .expect("enc_breaking_backtrace");
    assert!(!bt.anomaly, "compacted backtrace still flagged anomalous: {:?}", bt.counters);
}

/// Global-registry counters are monotone across runs: a second identical
/// operation can only grow them.
#[test]
fn global_counters_are_monotone_across_runs() {
    let _g = lock();
    let data = sample(20_000);
    let opts = CompressOptions::new(256);
    registry::global().reset();

    archive::compress(&data, &opts).unwrap();
    let after_one: Vec<(String, f64)> = {
        let g = registry::global();
        [
            ("rsh_runs_total", vec![("direction", "compress")]),
            ("rsh_bytes_in_total", vec![("direction", "compress")]),
            ("rsh_bytes_out_total", vec![("direction", "compress")]),
            ("rsh_chunks_total", vec![]),
        ]
        .into_iter()
        .map(|(n, l)| (n.to_string(), g.get(n, &l)))
        .collect()
    };
    assert!(after_one.iter().all(|(_, v)| *v > 0.0), "first run must record: {after_one:?}");

    archive::compress(&data, &opts).unwrap();
    let g = registry::global();
    for (name, before) in &after_one {
        let labels: &[(&str, &str)] =
            if name.starts_with("rsh_chunks") { &[] } else { &[("direction", "compress")] };
        let now = g.get(name, labels);
        assert!(now > *before, "{name} did not grow: {before} -> {now}");
    }
    // Exactly double: the runs were identical.
    assert_eq!(g.get("rsh_runs_total", &[("direction", "compress")]), 2.0);
}

/// The `rsh stats` reconciliation contract: after one compress,
/// `rsh_bytes_out_total` equals the archive size; after one batched
/// compress and one frame decompress, `rsh_shards_total` equals the
/// frame's shard count each time.
#[test]
fn registry_reconciles_with_archive_and_frame() {
    let _g = lock();
    let data = sample(30_000);

    // Plain compress: bytes_out == archive size, bytes_in == input bytes.
    registry::global().reset();
    let archive_bytes = archive::compress(&data, &CompressOptions::new(256)).unwrap();
    {
        let g = registry::global();
        let d = [("direction", "compress")];
        assert_eq!(g.get("rsh_bytes_out_total", &d), archive_bytes.len() as f64);
        assert_eq!(g.get("rsh_bytes_in_total", &d), (data.len() * 2) as f64);
        assert_eq!(g.get("rsh_runs_total", &d), 1.0);
    }

    // Batched compress: shards_total == the frame's shard count.
    registry::global().reset();
    let mut opts = BatchOptions::new(256);
    opts.shard_symbols = data.len().div_ceil(4).max(1);
    let (frame, report) = compress_batched(&data, &opts).unwrap();
    let info =
        huff::huff_core::frame::parse(&frame, huff::huff_core::integrity::Verify::Full).unwrap();
    assert_eq!(report.shards.len(), info.num_shards());
    assert_eq!(registry::global().get("rsh_shards_total", &[]), info.num_shards() as f64);

    // Frame decompress: shards_total counts the decoded shards again and
    // they all come back clean.
    registry::global().reset();
    let rec = archive::decompress_with(&frame, &DecompressOptions::strict()).unwrap();
    assert_eq!(rec.symbols, data);
    {
        let g = registry::global();
        assert_eq!(g.get("rsh_shards_total", &[]), info.num_shards() as f64);
        assert_eq!(g.get("rsh_shards_ok_total", &[]), info.num_shards() as f64);
        assert_eq!(g.get("rsh_shards_recovered_total", &[]), 0.0);
    }
}

/// Profiling feeds the kernel-efficiency histogram: one observation per
/// kernel, every one inside the [0, 1] buckets, and the Prometheus
/// exposition carries cumulative `le` buckets for it.
#[test]
fn profiler_populates_efficiency_histogram() {
    let _g = lock();
    registry::global().reset();
    let profile = roundtrip_profile(40_000, metrics::ProfileOptions::new(256));

    let g = registry::global();
    assert_eq!(g.count("rsh_kernel_efficiency", &[]), profile.kernels.len() as u64);
    let text = g.render();
    assert!(text.contains("# TYPE rsh_kernel_efficiency histogram"));
    assert!(text.contains("rsh_kernel_efficiency_bucket{le=\"+Inf\"}"));
    // Every observation is a fraction, so +Inf and le="1" agree.
    let count = g.count("rsh_kernel_efficiency", &[]);
    assert!(text.contains(&format!("rsh_kernel_efficiency_bucket{{le=\"1\"}} {count}")));
    // Stage seconds were recorded for the device stages.
    assert!(g.get("rsh_stage_seconds_total", &[("stage", "encode")]) > 0.0);
}
