//! End-to-end round trips across every encoder/decoder pairing and every
//! paper dataset preset.

use huff::huff_core::decode;
use huff::huff_core::encode::{self, BreakingStrategy, MergeConfig};
use huff::huff_core::histogram;
use huff::prelude::*;

fn build(data: &[u16], space: usize) -> CanonicalCodebook {
    let freqs = histogram::parallel_cpu::histogram(data, space, 4);
    huff::codebook::parallel(&freqs, 8).unwrap()
}

#[test]
fn all_paper_datasets_roundtrip_reduce_shuffle() {
    for d in PaperDataset::all() {
        let data = d.generate(200_000, 1);
        let book = build(&data, d.num_symbols());
        let cfg = MergeConfig::new(10, d.paper_reduction());
        let stream =
            encode::reduce_shuffle::encode(&data, &book, cfg, BreakingStrategy::SparseSidecar)
                .unwrap();
        let back = decode::chunked::decode(&stream, &book).unwrap();
        assert_eq!(back, data, "{}", d.name());
    }
}

#[test]
fn all_paper_datasets_roundtrip_archive() {
    for d in PaperDataset::all() {
        let data = d.generate(120_000, 2);
        let mut opts = CompressOptions::new(d.num_symbols());
        opts.symbol_bytes = d.symbol_bytes() as u8;
        let packed = compress(&data, &opts).unwrap();
        assert_eq!(decompress(&packed).unwrap(), data, "{}", d.name());
    }
}

#[test]
fn serial_multithread_coarse_prefix_sum_agree_bitwise() {
    let data = PaperDataset::Nci.generate(150_000, 3);
    let book = build(&data, 256);

    let serial = encode::serial::encode(&data, &book).unwrap();
    let mt = encode::multithread::encode(&data, &book, 8, 4096).unwrap();
    let (ps, _) = encode::prefix_sum::encode(&data, &book).unwrap();
    let coarse = encode::coarse::encode(&data, &book, MergeConfig::new(10, 3)).unwrap();
    // r = 2 keeps merged units within the 32-bit word on this data, so the
    // reduce-shuffle stream is bit-identical to the serial one.
    let rs = encode::reduce_shuffle::encode(
        &data,
        &book,
        MergeConfig::new(10, 2),
        BreakingStrategy::SparseSidecar,
    )
    .unwrap();

    assert_eq!(serial.bytes, mt.bytes);
    assert_eq!(serial.bytes, ps.bytes);
    assert_eq!(serial.bytes, coarse.bytes);
    assert!(rs.outliers.is_empty(), "unexpected breaking at r=2");
    assert_eq!(serial.bytes, rs.bytes);
}

#[test]
fn decoder_variants_agree() {
    let data = PaperDataset::Mr.generate(80_000, 4);
    let freqs = histogram::serial::histogram(&data, 256);
    let book = huff::codebook::parallel(&freqs, 4).unwrap();
    let enc = encode::serial::encode(&data, &book).unwrap();

    let canonical = decode::canonical::decode(&enc.bytes, enc.bit_len, data.len(), &book).unwrap();
    assert_eq!(canonical, data);
    assert!(decode::tree::cross_check(&data, &freqs).unwrap());
}

#[test]
fn every_magnitude_reduction_combination_roundtrips() {
    let data = PaperDataset::NyxQuant.generate(40_000, 5);
    let book = build(&data, 1024);
    for m in [6u32, 8, 10, 12] {
        for r in 1..m.min(6) {
            let cfg = MergeConfig::new(m, r);
            for strat in [BreakingStrategy::SparseSidecar, BreakingStrategy::WidenWord] {
                let stream = encode::reduce_shuffle::encode(&data, &book, cfg, strat).unwrap();
                let back = decode::chunked::decode(&stream, &book).unwrap();
                assert_eq!(back, data, "M={m} r={r} {strat:?}");
            }
        }
    }
}

#[test]
fn compression_ratio_matches_average_bitwidth() {
    for d in PaperDataset::all() {
        let data = d.generate(200_000, 6);
        let freqs = histogram::serial::histogram(&data, d.num_symbols());
        let book = huff::codebook::parallel(&freqs, 8).unwrap();
        let avg = book.average_bitwidth(&freqs);
        let enc = encode::serial::encode(&data, &book).unwrap();
        let measured_avg = enc.bit_len as f64 / data.len() as f64;
        assert!((measured_avg - avg).abs() < 1e-9, "{}", d.name());
    }
}
