//! Fault-injection sweep over every archive section.
//!
//! Uses the deterministic fault model in `huff_core::testing` to damage
//! archives section by section (`archive::layout`) and asserts the
//! integrity contract:
//!
//! * no fault ever panics the decoder;
//! * strict mode always errors on a damaged archive, with a typed
//!   `ChecksumMismatch` wherever structural validation doesn't reject the
//!   damage first;
//! * best-effort mode recovers exactly the chunks whose payload spans are
//!   untouched, sentinel-fills the rest, and reports the losses;
//! * RSH1 archives (no checksums) still decompress, and damaged RSH1
//!   archives never panic.

use huff::huff_core::archive::{self, CompressOptions};
use huff::huff_core::batch::{compress_batched_with_faults, DeviceFault};
use huff::huff_core::integrity::{DecompressOptions, Section};
use huff::huff_core::testing::{self, Fault};
use huff::huff_core::{DecoderKind, HuffError};
use huff::prelude::*;
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> Vec<u16> {
    PaperDataset::Nci.generate(n, seed)
}

fn packed_sample(n: usize, seed: u64) -> (Vec<u16>, Vec<u8>) {
    let data = sample(n, seed);
    let packed = compress(&data, &CompressOptions::new(256)).unwrap();
    (data, packed)
}

/// The payload byte span of chunk `ci`, relative to the payload start —
/// mirrors the span the archive checksums cover.
fn chunk_span(stream: &ChunkedStream, ci: usize) -> (usize, usize) {
    let off = stream.chunk_bit_offsets[ci];
    let len = stream.chunk_bit_lens[ci];
    let start = (off / 8) as usize;
    let end = (((off + len) as usize).div_ceil(8)).max(start);
    (start, end)
}

fn section_range(packed: &[u8], which: Section) -> std::ops::Range<usize> {
    archive::layout(packed).unwrap().into_iter().find(|(s, _)| *s == which).map(|(_, r)| r).unwrap()
}

#[test]
fn every_section_every_fault_never_panics_and_strict_errors() {
    let (data, packed) = packed_sample(30_000, 11);
    for (section, range) in archive::layout(&packed).unwrap() {
        for fault in testing::sweep(&range) {
            let mut corrupt = packed.clone();
            if !testing::apply(&mut corrupt, &fault) {
                continue; // no-op fault (e.g. swapped equal bytes)
            }
            if section == Section::SeekIndex {
                // The seek index is fail-open by contract: damage there
                // must be *invisible* to full decodes — strict decode
                // still succeeds bit-exactly and verify stays clean.
                assert_eq!(
                    archive::decompress(&corrupt).unwrap(),
                    data,
                    "{section} {fault:?}: trailer damage leaked into the decode"
                );
                assert!(
                    archive::verify(&corrupt).unwrap().is_clean(),
                    "{section} {fault:?}: verify blamed the fail-open trailer"
                );
                continue;
            }
            let strict = archive::decompress(&corrupt);
            assert!(strict.is_err(), "{section} {fault:?}: strict accepted damage");
            // Best-effort must not panic either; payload damage recovers,
            // header damage errors — both are fine here.
            let _ = archive::decompress_with(&corrupt, &DecompressOptions::best_effort());
            // Verification must not panic and must not report clean.
            if let Ok(report) = archive::verify(&corrupt) {
                assert!(!report.is_clean(), "{section} {fault:?}: verify said clean");
            }
        }
    }
}

#[test]
fn header_faults_are_fatal_in_best_effort_too() {
    let (_, packed) = packed_sample(20_000, 12);
    for (section, range) in archive::layout(&packed).unwrap() {
        if section == Section::Payload || section == Section::SeekIndex {
            continue; // payload recovers; the seek index is fail-open
        }
        for fault in testing::sweep(&range) {
            let mut corrupt = packed.clone();
            if !testing::apply(&mut corrupt, &fault) {
                continue;
            }
            let r = archive::decompress_with(&corrupt, &DecompressOptions::best_effort());
            assert!(r.is_err(), "{section} {fault:?}: best-effort survived header damage");
        }
    }
}

#[test]
fn checksum_table_flip_yields_typed_header_mismatch() {
    let (_, packed) = packed_sample(10_000, 13);
    let range = section_range(&packed, Section::Checksums);
    let mut corrupt = packed.clone();
    assert!(testing::apply(
        &mut corrupt,
        &Fault::BitFlip { offset: range.start + range.len() / 2, bit: 2 }
    ));
    match archive::decompress(&corrupt) {
        Err(HuffError::ChecksumMismatch { section: Section::Header, chunk: None, .. }) => {}
        other => panic!("expected header checksum mismatch, got {other:?}"),
    }
}

#[test]
fn payload_flips_strict_typed_error_best_effort_exact_recovery() {
    let (data, packed) = packed_sample(60_000, 14);
    let (stream, _, _) = archive::deserialize(&packed).unwrap();
    let payload = section_range(&packed, Section::Payload);
    let chunk_syms = stream.config.chunk_symbols();
    assert!(stream.num_chunks() >= 4, "want several chunks, got {}", stream.num_chunks());

    // Flip one bit in every 97th payload byte (and the first/last bytes).
    let mut positions: Vec<usize> = (0..payload.len()).step_by(97).collect();
    positions.push(payload.len() - 1);
    for rel in positions {
        let fault = Fault::BitFlip { offset: payload.start + rel, bit: (rel % 8) as u8 };
        let mut corrupt = packed.clone();
        assert!(testing::apply(&mut corrupt, &fault));

        // Which chunks' spans cover the damaged byte?
        let expected: Vec<usize> = (0..stream.num_chunks())
            .filter(|&ci| {
                let (s, e) = chunk_span(&stream, ci);
                rel >= s && rel < e
            })
            .collect();
        assert!(!expected.is_empty(), "byte {rel} outside every chunk span");

        // Strict: typed error naming one of the damaged chunks.
        match archive::decompress(&corrupt) {
            Err(HuffError::ChecksumMismatch {
                section: Section::Payload, chunk: Some(ci), ..
            }) => {
                assert!(expected.contains(&(ci as usize)), "chunk {ci} not in {expected:?}")
            }
            other => panic!("rel={rel}: expected payload mismatch, got {other:?}"),
        }

        // Best-effort: exactly the covered chunks are damaged, everything
        // else is intact.
        let opts = DecompressOptions::best_effort();
        let rec = archive::decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.report.damaged_chunks, expected, "rel={rel}");
        assert_eq!(rec.symbols.len(), data.len());
        let mut lost = vec![false; data.len()];
        for &(s, e) in &rec.report.damaged_ranges {
            lost[s..e].iter_mut().for_each(|b| *b = true);
        }
        for i in 0..data.len() {
            if lost[i] {
                assert_eq!(rec.symbols[i], opts.sentinel);
                assert!(expected.contains(&(i / chunk_syms)), "lost symbol {i} in clean chunk");
            } else {
                assert_eq!(rec.symbols[i], data[i], "rel={rel} index {i}");
            }
        }
    }
}

#[test]
fn payload_truncation_recovers_exactly_the_complete_chunks() {
    let (data, packed) = packed_sample(80_000, 15);
    let (stream, _, _) = archive::deserialize(&packed).unwrap();
    let payload = section_range(&packed, Section::Payload);

    for frac in [4, 2, 1] {
        // Keep 1/4, 1/2, then all-but-one-byte of the payload.
        let keep = if frac == 1 { payload.len() - 1 } else { payload.len() / frac };
        let mut corrupt = packed.clone();
        assert!(testing::apply(&mut corrupt, &Fault::Truncate { len: payload.start + keep }));

        assert!(archive::decompress(&corrupt).is_err(), "strict accepted truncation");

        let expected: Vec<usize> =
            (0..stream.num_chunks()).filter(|&ci| chunk_span(&stream, ci).1 > keep).collect();
        let rec = archive::decompress_with(&corrupt, &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.report.damaged_chunks, expected, "keep={keep}");
        let mut lost = vec![false; data.len()];
        for &(s, e) in &rec.report.damaged_ranges {
            lost[s..e].iter_mut().for_each(|b| *b = true);
        }
        for i in 0..data.len() {
            if !lost[i] {
                assert_eq!(rec.symbols[i], data[i], "keep={keep} index {i}");
            }
        }
    }
}

#[test]
fn rsh1_archives_still_decompress_and_never_panic_when_damaged() {
    let (data, packed) = packed_sample(20_000, 16);
    let (stream, book, sb) = archive::deserialize(&packed).unwrap();
    let legacy = archive::serialize_v1(&stream, &book, sb).unwrap();
    assert_eq!(&legacy[..4], b"RSH1");
    assert_eq!(archive::decompress(&legacy).unwrap(), data);
    // No checksums to check: verification is vacuously clean.
    assert!(archive::verify(&legacy).unwrap().is_clean());

    for (_, range) in archive::layout(&legacy).unwrap() {
        for fault in testing::sweep(&range) {
            let mut corrupt = legacy.clone();
            if !testing::apply(&mut corrupt, &fault) {
                continue;
            }
            // RSH1 has no checksums, so damage may decode to garbage —
            // the only promise is: no panic, and structural errors are
            // typed.
            match archive::decompress(&corrupt) {
                Ok(out) => {
                    let _ = out.len();
                }
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

/// A sharded (RSHM multi-shard frame) sample: 4 shards of 20k symbols.
fn framed_sample(seed: u64) -> (Vec<u16>, Vec<u8>, huff::frame::FrameInfo) {
    let data = sample(80_000, seed);
    let mut opts = huff::BatchOptions::new(256);
    opts.shard_symbols = 20_000;
    opts.devices = vec![DeviceSpec::test_part()];
    let (packed, _) = huff::compress_batched(&data, &opts).unwrap();
    let info = huff::frame::parse(&packed, Verify::Full).unwrap();
    (data, packed, info)
}

#[test]
fn framed_shard_chunk_corruption_localizes_to_that_shard() {
    let (data, packed, info) = framed_sample(21);
    assert_eq!(info.num_shards(), 4);
    // Corrupt a payload chunk of each shard in turn.
    for victim in 0..info.num_shards() {
        let r = &info.shard_ranges[victim];
        let fault = Fault::BitFlip { offset: r.start + 2 * r.len() / 3, bit: 5 };
        let mut corrupt = packed.clone();
        assert!(testing::apply(&mut corrupt, &fault));

        // Strict fails on the damaged frame.
        assert!(archive::decompress(&corrupt).is_err(), "shard {victim}: strict accepted");

        // Best-effort recovers every other shard bit-exactly and reports
        // the lossy span inside the victim shard only.
        let rec = archive::decompress_with(&corrupt, &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), data.len());
        assert!(!rec.report.is_clean(), "shard {victim}: reported clean");
        let span = info.shard_symbol_range(victim).unwrap();
        for (i, (&got, &want)) in rec.symbols.iter().zip(&data).enumerate() {
            if i < span.start || i >= span.end {
                assert_eq!(got, want, "shard {victim}: symbol {i} outside victim changed");
            }
        }
        for &(s, e) in &rec.report.damaged_ranges {
            assert!(
                s >= span.start && e <= span.end,
                "shard {victim}: damage [{s},{e}) escapes {span:?}"
            );
        }
        // verify() agrees with the recovery report.
        let vreport = huff::verify(&corrupt).unwrap();
        assert_eq!(vreport.damaged_ranges, rec.report.damaged_ranges);
    }
}

#[test]
fn frame_header_faults_are_fatal_and_never_panic() {
    let (_, packed, info) = framed_sample(22);
    let header_len = info.shard_ranges[0].start;
    for fault in testing::sweep(&(0..header_len)) {
        let mut corrupt = packed.clone();
        if !testing::apply(&mut corrupt, &fault) {
            continue;
        }
        // Frame-header damage has no per-shard recovery story: strict and
        // best-effort both error (or the magic no longer parses as RSHM —
        // then whatever parser runs must still reject it).
        assert!(archive::decompress(&corrupt).is_err(), "{fault:?}: strict accepted");
        assert!(
            archive::decompress_with(&corrupt, &DecompressOptions::best_effort()).is_err(),
            "{fault:?}: best-effort survived frame-header damage"
        );
    }
}

#[test]
fn framed_dead_shard_costs_exactly_that_shard() {
    let (data, packed, info) = framed_sample(23);
    // Destroy shard 1's RSH2 magic: the whole shard becomes unreadable.
    let mut corrupt = packed.clone();
    let r = &info.shard_ranges[1];
    corrupt[r.start] ^= 0xFF;
    let rec = archive::decompress_with(&corrupt, &DecompressOptions::best_effort()).unwrap();
    let span = info.shard_symbol_range(1).unwrap();
    assert_eq!(rec.report.damaged_ranges, vec![(span.start, span.end)]);
    assert_eq!(rec.report.symbols_lost, span.len());
    for (i, (&got, &want)) in rec.symbols.iter().zip(&data).enumerate() {
        if i < span.start || i >= span.end {
            assert_eq!(got, want, "symbol {i} outside dead shard changed");
        }
    }
}

#[test]
fn framed_batch_path_decodes_with_every_backend() {
    // The serve engine's degradation ladder decodes RSHM frames through
    // frame::decompress_with per backend; all three must be bit-exact on
    // a multi-shard frame built by the batch pipeline.
    let (data, packed, info) = framed_sample(24);
    assert!(info.num_shards() >= 4);
    for kind in [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut] {
        let opts = DecompressOptions::strict().with_decoder(kind);
        let rec = huff::frame::decompress_with(&packed, &opts).unwrap();
        assert!(rec.report.is_clean(), "{kind:?} reported damage on a clean frame");
        assert_eq!(rec.symbols, data, "{kind:?} not bit-exact");
    }
}

#[test]
fn device_failure_quarantines_then_frame_decodes_bit_exactly() {
    // Quarantine-and-continue, end to end: a device dies mid-batch, its
    // shards reschedule onto the survivor, and the resulting frame is
    // byte-identical to a healthy run — so every decode path sees the
    // same bits whether or not the producer suffered a failure.
    let data = sample(80_000, 25);
    let mut opts = huff::BatchOptions::new(256);
    opts.shard_symbols = 10_000;
    opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
    let (healthy, _) = huff::compress_batched(&data, &opts).unwrap();
    let (packed, report, quarantine) =
        compress_batched_with_faults(&data, &opts, &[DeviceFault { device: 1, at: 0.0 }]).unwrap();
    assert!(!quarantine.is_clean());
    assert!(!quarantine.quarantined.is_empty(), "failure at t=0 must quarantine shards");
    assert!(
        quarantine.rescheduled.iter().all(|&(_, d)| d == 0),
        "rescheduling must land on the surviving device"
    );
    assert_eq!(packed, healthy, "fault-recovered frame differs from healthy bytes");
    assert_eq!(report.shards.len(), 8);
    for kind in [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut] {
        let opts = DecompressOptions::strict().with_decoder(kind);
        let rec = huff::frame::decompress_with(&packed, &opts).unwrap();
        assert_eq!(rec.symbols, data, "{kind:?} on quarantine-produced frame");
    }
}

#[test]
fn quarantined_frame_with_wire_corruption_still_recovers_other_shards() {
    // The serve engine relies on both halves composing: device failure at
    // the producer (quarantine + reschedule) and shard corruption on the
    // wire (best-effort recovery) must still leave every untouched shard
    // bit-exact.
    let data = sample(80_000, 26);
    let mut opts = huff::BatchOptions::new(256);
    opts.shard_symbols = 20_000;
    opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
    let (packed, _, quarantine) =
        compress_batched_with_faults(&data, &opts, &[DeviceFault { device: 0, at: 0.0 }]).unwrap();
    assert!(!quarantine.is_clean());
    let info = huff::frame::parse(&packed, Verify::Full).unwrap();
    let victim = 2;
    let r = &info.shard_ranges[victim];
    let mut corrupt = packed.clone();
    assert!(testing::apply(
        &mut corrupt,
        &Fault::BitFlip { offset: r.start + r.len() / 2, bit: 4 }
    ));
    assert!(archive::decompress(&corrupt).is_err(), "strict accepted corruption");
    let rec = archive::decompress_with(&corrupt, &DecompressOptions::best_effort()).unwrap();
    let span = info.shard_symbol_range(victim).unwrap();
    for (i, (&got, &want)) in rec.symbols.iter().zip(&data).enumerate() {
        if i < span.start || i >= span.end {
            assert_eq!(got, want, "symbol {i} outside victim shard changed");
        }
    }
    for &(s, e) in &rec.report.damaged_ranges {
        assert!(s >= span.start && e <= span.end, "damage [{s},{e}) escapes shard {victim}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Any single-byte XOR of an RSH2 archive is detected: every byte up
    // to the payload's end is covered by the magic check, the header CRC,
    // or a chunk CRC — so a strict decompress must error, never silently
    // corrupt. Bytes in the seek-index trailer are covered by the index's
    // own CRC, whose failure mode is fail-open: the decode must come back
    // bit-exact, never wrong.
    #[test]
    fn any_single_byte_mutation_is_detected(
        seed in 1u64..1000,
        pos_frac in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let data = sample(4_000, seed);
        let packed = compress(&data, &CompressOptions::new(256)).unwrap();
        let trailer = archive::layout(&packed)
            .unwrap()
            .into_iter()
            .find(|(s, _)| *s == Section::SeekIndex)
            .map(|(_, r)| r)
            .unwrap();
        let pos = (pos_frac as usize * (packed.len() - 1)) / 999;
        let mut corrupt = packed.clone();
        corrupt[pos] ^= xor;
        prop_assert!(corrupt != packed);
        if pos >= trailer.start {
            prop_assert_eq!(
                archive::decompress(&corrupt).unwrap(), data,
                "pos={} xor={:#x} in the fail-open trailer", pos, xor
            );
        } else {
            prop_assert!(archive::decompress(&corrupt).is_err(), "pos={pos} xor={xor:#x}");

            // Best-effort never panics; when it succeeds, length is
            // preserved and clean regions are intact.
            if let Ok(rec) = archive::decompress_with(&corrupt, &DecompressOptions::best_effort()) {
                prop_assert_eq!(rec.symbols.len(), data.len());
                let mut lost = vec![false; data.len()];
                for &(s, e) in &rec.report.damaged_ranges {
                    lost[s..e].iter_mut().for_each(|b| *b = true);
                }
                for i in 0..data.len() {
                    if !lost[i] {
                        prop_assert_eq!(rec.symbols[i], data[i]);
                    }
                }
            }
        }
    }
}
