//! Full device pipeline with a kernel-by-kernel clock report, on both of
//! the paper's GPUs (V100 and RTX 5000).
//!
//! ```sh
//! cargo run --release -p huff --example gpu_pipeline
//! ```

use huff::prelude::*;

fn main() -> Result<(), HuffError> {
    let data = PaperDataset::NyxQuant.generate(16 << 20, 3);
    let sb = PaperDataset::NyxQuant.symbol_bytes();
    let input_bytes = (data.len() as u64 * sb) as f64;

    for gpu in [Gpu::v100(), Gpu::rtx5000()] {
        println!("=== {} ===", gpu.spec().name);
        let (stream, book, report) =
            pipeline::run(&gpu, &data, sb, 1024, 10, Some(3), PipelineKind::ReduceShuffle)?;
        let (decoded, _) = huff::decode::gpu::decode_on_gpu(&gpu, &stream, &book)?;
        assert_eq!(decoded, data);

        println!("{:<26} {:>9} {:>12} {:>10}", "kernel", "launches", "time ms", "share %");
        let clock = gpu.clock();
        let total = clock.elapsed();
        for (name, launches, secs) in clock.by_kernel() {
            println!(
                "{:<26} {:>9} {:>12.4} {:>9.1}%",
                name,
                launches,
                secs * 1e3,
                100.0 * secs / total
            );
        }
        println!("{:<26} {:>9} {:>12.4} {:>9.1}%", "TOTAL", clock.launches(), total * 1e3, 100.0);
        println!(
            "overall {:.1} GB/s | encode {:.1} GB/s | avg {:.4} bits | breaking {:.6}% | ratio {:.2}x\n",
            gpu_sim::gbps(input_bytes / total),
            report.encode_gbps(),
            report.avg_bits,
            report.breaking_fraction * 100.0,
            report.compression_ratio
        );
    }
    Ok(())
}
