//! Bioinformatics scenario: k-mer Huffman coding of DNA sequences.
//!
//! Large-alphabet Huffman coding (2048-8192 symbols for k = 3..5) is where
//! serial codebook construction becomes the bottleneck — this example
//! reproduces the Table III experiment shape: serial-on-device vs the
//! parallel two-phase construction, per k.
//!
//! ```sh
//! cargo run --release -p huff --example dna_kmer
//! ```

use huff::huff_core::codebook;
use huff::huff_core::histogram;
use huff::huff_datasets::dna;
use huff::prelude::*;

fn main() -> Result<(), HuffError> {
    let n = 4 << 20;
    println!(
        "{:<6} {:>8} {:>14} {:>12} {:>14} {:>12} {:>9}",
        "k-mer", "#symbols", "serial-GPU ms", "canonize ms", "GenCL+CW ms", "speedup", "ratio"
    );

    for k in [3usize, 4, 5] {
        let (symbols, space) = dna::kmer_dataset(n, k, 99);
        let freqs = histogram::parallel_cpu::histogram(&symbols, space, 8);

        let g1 = Gpu::v100();
        let (_, serial_t) = codebook::gpu::serial_on_gpu(&g1, &freqs)?;
        let g2 = Gpu::v100();
        let (book, par_t) = codebook::gpu::parallel_on_gpu(&g2, &freqs)?;

        // Encode + decode round trip with the parallel book. The reduction
        // factor must follow the Fig. 3 rule: k-mer codewords average ~2
        // bits per base, so r = 1 or 2 depending on k — hardcoding a large
        // r would overflow the 32-bit word and push everything into the
        // breaking sidecar.
        let cfg = MergeConfig::auto::<u32>(10, &freqs, &book);
        let stream = huff::encode::reduce_shuffle::encode(
            &symbols,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )?;
        assert_eq!(huff::decode::chunked::decode(&stream, &book)?, symbols);

        println!(
            "{:<6} {:>8} {:>14.3} {:>12.3} {:>14.3} {:>11.1}x {:>8.2}x",
            format!("{k}-mer"),
            space,
            serial_t.gen_codebook * 1e3,
            serial_t.canonize * 1e3,
            par_t.total * 1e3,
            serial_t.total / par_t.total,
            stream.compression_ratio(16),
        );
    }

    println!("\n(speedup grows with the symbol count, as in the paper's Table III)");
    Ok(())
}
