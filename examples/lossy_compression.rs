//! End-to-end error-bounded lossy compression — the application the
//! paper's encoder was built for (cuSZ/SZ).
//!
//! Generates a smooth 3-D scientific field, compresses it under several
//! absolute error bounds (Lorenzo prediction → error-bounded quantization
//! → reduce-shuffle Huffman), and verifies the pointwise bound on
//! decompression.
//!
//! ```sh
//! cargo run --release -p huff --example lossy_compression
//! ```

use huff::sz_quant::{compress::compress, compress::decompress, field};

fn main() {
    let (nx, ny, nz) = (128, 128, 32);
    println!(
        "generating a {nx}x{ny}x{nz} smooth field ({} MB of f32)...",
        nx * ny * nz * 4 / 1_000_000
    );
    let f = field::smooth_cosines(nx, ny, nz, 4, 2024);
    let (lo, hi) = f.range();
    println!("value range [{lo:.3}, {hi:.3}]\n");

    println!(
        "{:>12} {:>10} {:>12} {:>14} {:>12}",
        "error bound", "ratio", "max error", "unpredictable", "bound held"
    );
    for eb in [0.1f32, 0.01, 0.001, 0.0001] {
        let (packed, stats) = compress(&f, eb, 1024).expect("compress");
        let back = decompress(&packed).expect("decompress");
        let err = f.max_abs_diff(&back);
        println!(
            "{:>12} {:>9.2}x {:>12.6} {:>14} {:>12}",
            format!("{eb}"),
            stats.ratio,
            err,
            stats.unpredictable,
            if err <= eb + 1e-6 { "yes" } else { "NO" },
        );
        assert!(err <= eb + 1e-6);
    }

    println!("\nrougher data costs ratio, never correctness:");
    let rough = field::noisy(nx, ny, nz, 0.8, 7);
    let (_, stats) = compress(&rough, 0.01, 1024).expect("compress");
    println!(
        "noisy field at eb=0.01: ratio {:.2}x, {} unpredictable",
        stats.ratio, stats.unpredictable
    );
}
