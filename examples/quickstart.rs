//! Quickstart: one-call compression and decompression.
//!
//! ```sh
//! cargo run --release -p huff --example quickstart
//! ```

use huff::prelude::*;

fn main() -> Result<(), HuffError> {
    // Pretend these are quantization codes from a lossy compressor: 1024
    // possible bins, sharply peaked around the centre.
    let data = PaperDataset::NyxQuant.generate(4 << 20, 42);
    println!("input:   {} symbols ({} MiB as u16)", data.len(), (data.len() * 2) >> 20);

    // Compress with defaults: M = 10 (1024-symbol chunks), reduction factor
    // picked by the average-bitwidth rule, breaking units stored sparsely.
    let t0 = std::time::Instant::now();
    let packed = compress(&data, &CompressOptions::new(1024))?;
    let enc_dt = t0.elapsed();

    let t1 = std::time::Instant::now();
    let restored = decompress(&packed)?;
    let dec_dt = t1.elapsed();

    assert_eq!(restored, data);
    println!(
        "archive: {} bytes ({:.2}x compression)",
        packed.len(),
        (data.len() * 2) as f64 / packed.len() as f64
    );
    println!(
        "host encode: {:.1} ms, decode: {:.1} ms (wall clock, this machine)",
        enc_dt.as_secs_f64() * 1e3,
        dec_dt.as_secs_f64() * 1e3
    );
    println!("round trip verified: OK");
    Ok(())
}
