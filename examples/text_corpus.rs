//! CPU scenario: multithreaded Huffman encoding of a text corpus.
//!
//! Sweeps the worker count of the multithread encoder (the paper's
//! Table VI experiment) on enwik-like text, reporting wall-clock host
//! throughput and parallel efficiency.
//!
//! ```sh
//! cargo run --release -p huff --example text_corpus
//! ```

use huff::huff_core::encode::multithread;
use huff::huff_core::histogram;
use huff::prelude::*;
use std::time::Instant;

fn main() -> Result<(), HuffError> {
    let n = 32 << 20; // 32M byte symbols
    println!("generating {} bytes of enwik-like text...", n);
    let data = PaperDataset::Enwik8.generate(n, 5);
    let freqs = histogram::parallel_cpu::histogram(&data, 256, 8);
    let book = CanonicalCodebook::from_lengths(
        &huff::huff_core::codebook::multithread::codeword_lengths(&freqs, 4)?,
    )?;

    let serial = {
        let t = Instant::now();
        let s = huff::encode::serial::encode(&data, &book)?;
        (t.elapsed().as_secs_f64(), s)
    };
    println!(
        "\nserial: {:.1} MB/s, ratio {:.3}x\n",
        n as f64 / serial.0 / 1e6,
        serial.1.compression_ratio(8)
    );

    println!("{:>7} {:>12} {:>12} {:>11}", "threads", "encode MB/s", "speedup", "efficiency");
    let base = serial.0;
    let max_threads = std::thread::available_parallelism().map_or(8, |p| p.get());
    let mut t_count = 1;
    while t_count <= max_threads {
        let t = Instant::now();
        let out = multithread::encode_with_pool(&data, &book, t_count, 1 << 16)?;
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(out.bytes, serial.1.bytes, "multithread output must be bit-identical");
        let speedup = base / dt;
        println!(
            "{:>7} {:>12.1} {:>11.2}x {:>10.2}",
            t_count,
            n as f64 / dt / 1e6,
            speedup,
            speedup / t_count as f64
        );
        t_count *= 2;
    }

    println!("\n(bit-identical output at every worker count; knee depends on this machine)");
    Ok(())
}
