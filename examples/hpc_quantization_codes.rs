//! HPC scenario: encode SZ-style quantization codes on a simulated V100,
//! comparing the reduce-shuffle encoder against the cuSZ coarse baseline
//! and the Rahmani prefix-sum baseline — the workloads that motivate the
//! paper (error-bounded lossy compression of scientific data).
//!
//! ```sh
//! cargo run --release -p huff --example hpc_quantization_codes
//! ```

use huff::prelude::*;

fn main() -> Result<(), HuffError> {
    let n = 32 << 20; // 64 MiB of u16 quantization codes
    println!("generating {} Nyx-Quant-like quantization codes...", n);
    let data = PaperDataset::NyxQuant.generate(n, 7);

    println!(
        "\n{:<16} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "encoder", "hist GB/s", "codebook ms", "encode GB/s", "overall GB/s", "ratio"
    );
    for (name, kind) in [
        ("reduce-shuffle", PipelineKind::ReduceShuffle),
        ("cuSZ coarse", PipelineKind::CuszCoarse),
        ("prefix-sum", PipelineKind::PrefixSum),
    ] {
        let gpu = Gpu::v100();
        let (stream, book, report) = pipeline::run(
            &gpu,
            &data,
            PaperDataset::NyxQuant.symbol_bytes(),
            1024,
            10,
            Some(3),
            kind,
        )?;
        // Verify the stream decodes before reporting numbers.
        let ok = match kind {
            PipelineKind::PrefixSum => {
                huff::decode::canonical::decode(
                    &stream.bytes,
                    stream.total_bits,
                    stream.num_symbols,
                    &book,
                )? == data
            }
            _ => huff::decode::chunked::decode(&stream, &book)? == data,
        };
        assert!(ok, "{name} failed round trip");
        println!(
            "{:<16} {:>10.1} {:>12.3} {:>12.1} {:>12.1} {:>9.2}x",
            name,
            report.hist_gbps(),
            report.times.codebook * 1e3,
            report.encode_gbps(),
            report.overall_gbps(),
            report.compression_ratio,
        );
    }

    println!("\n(modeled device times on a V100 spec; see DESIGN.md for the cost model)");
    Ok(())
}
