//! The shim's JSON data model (re-exported by the vendored `serde_json`).

use std::fmt;

/// An order-preserving string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (kept exact, not routed through f64).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as an object, if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both convert, everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (exact `Int` values only).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document.
    ///
    /// A small recursive-descent parser covering the subset this workspace
    /// writes: the round-trip law is `Value::parse(&v.to_string()) == Ok(v)`
    /// for every finite value. Numbers without `.`/`e` parse as [`Value::Int`]
    /// (kept exact as `i128`), all others as [`Value::Float`]. Errors carry a
    /// byte offset and a short description.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates would need pairing; the writer never
                            // emits them, so map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (multi-byte sequences are
                    // valid inside JSON strings).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if float {
            text.parse::<f64>().map(Value::Float).map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => write!(f, "null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null"), Ok(Value::Null));
        assert_eq!(Value::parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(Value::parse("false"), Ok(Value::Bool(false)));
        assert_eq!(Value::parse("-42"), Ok(Value::Int(-42)));
        assert_eq!(Value::parse("3.5"), Ok(Value::Float(3.5)));
        assert_eq!(Value::parse("1e3"), Ok(Value::Float(1000.0)));
        assert_eq!(
            Value::parse("\"hi\\n\\\"there\\\"\""),
            Ok(Value::String("hi\n\"there\"".into()))
        );
        assert_eq!(Value::parse("\"\\u00e9\""), Ok(Value::String("é".into())));
    }

    #[test]
    fn parse_containers() {
        let v = Value::parse(r#"{"a": [1, 2.5, "x"], "b": {"nested": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i128(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(obj.get("b").unwrap().as_object().unwrap().get("nested"), Some(&Value::Null));
    }

    #[test]
    fn parse_roundtrips_display() {
        let mut map = Map::new();
        map.insert("schema".into(), Value::String("rsh-bench-v1".into()));
        map.insert("n".into(), Value::Int(1 << 40));
        map.insert("gbps".into(), Value::Float(123.456));
        map.insert("rows".into(), Value::Array(vec![Value::Bool(false), Value::Null]));
        let v = Value::Object(map);
        assert_eq!(Value::parse(&v.to_string()), Ok(v));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("nil").is_err());
    }
}
