//! The shim's JSON data model (re-exported by the vendored `serde_json`).

use std::fmt;

/// An order-preserving string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (kept exact, not routed through f64).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as an object, if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => write!(f, "null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}
