//! Offline stand-in for [serde](https://docs.rs/serde).
//!
//! Instead of serde's visitor architecture, [`Serialize`] converts a value
//! directly into an in-memory [`json::Value`] — that is the only data model
//! this workspace ever serializes into (`serde_json::to_value` on benchmark
//! rows). [`Deserialize`] is a marker: nothing in the workspace
//! deserializes, but the derive keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialize into the shim's JSON data model.
pub trait Serialize {
    /// The JSON rendering of `self`.
    fn to_json(&self) -> json::Value;
}

/// Marker trait mirroring `serde::Deserialize` (no decoding is performed
/// anywhere in this workspace).
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i128)
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}
