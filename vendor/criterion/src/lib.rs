//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Supports the macro/group/bencher surface the workspace's benches use and
//! reports a median-of-5 wall-clock per benchmark (plus derived throughput
//! when one was declared). No statistics engine, plots, or baselines — the
//! repo's quantitative claims come from the `gpu-sim` cost model; these
//! benches exist for relative host-side comparisons.
//!
//! The `criterion_main!`-generated entry point only runs when the binary
//! receives `--bench` (which `cargo bench` passes); under `cargo test` the
//! harness exits immediately, keeping test runs fast.

use std::time::{Duration, Instant};

/// Declared throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    last: Option<Duration>,
}

impl Bencher {
    /// Time `f`, keeping the fastest of a few runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const RUNS: usize = 5;
        let mut best: Option<Duration> = None;
        for _ in 0..RUNS {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            if best.is_none_or(|b| dt < b) {
                best = Some(dt);
            }
        }
        self.last = best;
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), throughput: None }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing throughput/config settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput basis.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim always runs a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn report(&self, id: &str, took: Option<Duration>) {
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{id}", self.name) };
        match took {
            Some(dt) => {
                let secs = dt.as_secs_f64().max(1e-12);
                match self.throughput {
                    Some(Throughput::Bytes(b)) => eprintln!(
                        "bench {label:<40} {:>12.3} ms   {:>9.1} MB/s",
                        secs * 1e3,
                        b as f64 / secs / 1e6
                    ),
                    Some(Throughput::Elements(n)) => eprintln!(
                        "bench {label:<40} {:>12.3} ms   {:>9.1} Melem/s",
                        secs * 1e3,
                        n as f64 / secs / 1e6
                    ),
                    None => eprintln!("bench {label:<40} {:>12.3} ms", secs * 1e3),
                }
            }
            None => eprintln!("bench {label:<40} (closure never called iter)"),
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.id, b.last);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.id, b.last);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Prevent the optimizer from eliding a value (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; `cargo test` must stay fast.
            if std::env::args().any(|a| a == "--bench") {
                $($group();)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.throughput(Throughput::Bytes(8));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
                b.iter(|| ran += x);
            });
            g.finish();
        }
        assert!(ran > 0);
    }
}
