//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! A deterministic random-testing engine with the same surface the
//! workspace's property tests use: the `proptest!` macro, range / `any` /
//! `Just` / tuple / `collection::vec` strategies, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline shim:
//! * no shrinking — a failing case reports the generated inputs via the
//!   panic message of the underlying `assert!`;
//! * no persistence — `proptest-regressions` files are ignored;
//! * generation is seeded deterministically from the test's module path and
//!   name, so runs are reproducible without a seed file.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The (tiny) generation engine.

    /// Deterministic RNG used to drive strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (test name) — FNV-1a hashed.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi]`.
        pub fn below_inclusive(&mut self, lo: u128, hi: u128) -> u128 {
            debug_assert!(lo <= hi);
            let span = hi - lo + 1;
            lo + u128::from(self.next_u64()) % span
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.below_inclusive(self.start as u128, self.end as u128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.below_inclusive(*self.start() as u128, *self.end() as u128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128 - 1;
                (rng.below_inclusive(0, (hi - lo) as u128) as i128 + lo) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                (rng.below_inclusive(0, (hi - lo) as u128) as i128 + lo) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below_inclusive(self.size.lo as u128, self.size.hi as u128) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual single import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                let mut __one_case = |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                };
                __one_case(&mut __rng);
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property test (no shrinking in the shim — plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current generated case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (Vec<u16>, usize)> {
        (2usize..50)
            .prop_flat_map(|space| (crate::collection::vec(0..space as u16, 1..100), Just(space)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn flat_map_keeps_invariant((data, space) in pair()) {
            prop_assume!(!data.is_empty());
            prop_assert!(data.iter().all(|&d| (d as usize) < space));
        }

        #[test]
        fn map_applies(n in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!((10..50).contains(&n));
            prop_assert_eq!(n % 10, 0);
            prop_assert_ne!(n, 0);
        }
    }
}
