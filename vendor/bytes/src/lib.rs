//! Offline stand-in for [bytes](https://docs.rs/bytes): `Bytes`/`BytesMut`
//! as plain owned buffers with the little-endian cursor methods the
//! archive (de)serializers use. No zero-copy reference counting — callers
//! here only parse and build small headers.

use std::ops::Deref;

/// Read-side cursor trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec(), pos: 0 }
    }

    /// Split off the next `len` bytes as an owned `Bytes`, advancing.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes out of bounds");
        let out = Bytes { data: self.chunk()[..len].to_vec(), pos: 0 };
        self.advance(len);
        out
    }

    /// Length of the unread remainder.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether the unread remainder is empty.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unread remainder as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.5);
        w.put_slice(b"xyz");

        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        let tail = r.copy_to_bytes(3);
        assert_eq!(&tail[..], b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        let _ = r.get_u32_le();
    }
}
