//! Offline stand-in for [serde_json](https://docs.rs/serde_json): the value
//! model lives in the vendored `serde::json`; this crate provides the
//! `to_value` / `to_string` entry points the workspace calls.

pub use serde::json::{Map, Value};

/// Serialization error (the shim's direct-to-value encoding cannot fail,
/// but the `Result` return mirrors the real API).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Convert a serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Render a serializable value as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_display_is_compact_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Int(3));
        m.insert("b".into(), Value::Array(vec![Value::Bool(true), Value::Null]));
        m.insert("s".into(), Value::String("x\"y".into()));
        assert_eq!(Value::Object(m).to_string(), r#"{"a":3,"b":[true,null],"s":"x\"y"}"#);
    }

    #[test]
    fn to_value_on_primitives() {
        assert_eq!(to_value(5u32).unwrap(), Value::Int(5));
        assert_eq!(to_value("hi").unwrap(), Value::String("hi".into()));
        assert_eq!(to_value(1.5f64).unwrap(), Value::Float(1.5));
    }
}
