//! Syn-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The container has no crates.io access, so this macro parses the item's
//! token stream by hand. Supported shapes (everything this workspace
//! derives on):
//!
//! * structs with named fields → JSON object, one entry per field;
//! * tuple structs → JSON array;
//! * unit structs → JSON null;
//! * enums (any variant shape) → the `Debug` rendering as a JSON string.
//!
//! Generic items are rejected with a compile error — none exist in this
//! workspace, and refusing loudly beats silently wrong serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemShape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum,
}

struct Item {
    name: String,
    shape: ItemShape,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attribute groups and a leading visibility at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                i += 1;
            }
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
        }
        return i;
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("vendored serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde derive: expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        panic!("vendored serde derive: generic type `{name}` is not supported");
    }

    if kind == "enum" {
        return Item { name, shape: ItemShape::Enum };
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Item { name, shape: ItemShape::NamedStruct(parse_named_fields(g.stream())) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item { name, shape: ItemShape::TupleStruct(count_tuple_fields(g.stream())) }
        }
        Some(t) if is_punct(t, ';') => Item { name, shape: ItemShape::UnitStruct },
        other => panic!("vendored serde derive: unexpected token after `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
                // Consume the type up to the next top-level ',' (angle-depth aware).
        let mut angle = 0i32;
        while let Some(tt) = tokens.get(i) {
            if is_punct(tt, '<') {
                angle += 1;
            } else if is_punct(tt, '>') {
                angle -= 1;
            } else if is_punct(tt, ',') && angle == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        if is_punct(tt, '<') {
            angle += 1;
        } else if is_punct(tt, '>') {
            angle -= 1;
        } else if is_punct(tt, ',') && angle == 0 {
            if idx + 1 == tokens.len() {
                trailing_comma = true;
            } else {
                count += 1;
            }
        }
    }
    let _ = trailing_comma;
    count
}

/// Derive the shim's `serde::Serialize` (a `to_json` method).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            let mut s = String::from("let mut map = ::serde::json::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "map.insert(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::json::Value::Object(map)");
            s
        }
        ItemShape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_json(&self.{i})")).collect();
            format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemShape::UnitStruct => "::serde::json::Value::Null".to_string(),
        ItemShape::Enum => {
            "::serde::json::Value::String(::std::format!(\"{:?}\", self))".to_string()
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_json(&self) -> ::serde::json::Value {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("vendored serde derive: generated impl must parse")
}

/// Derive the shim's (marker) `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("vendored serde derive: generated impl must parse")
}
