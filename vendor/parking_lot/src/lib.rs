//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot) backed by
//! `std::sync`. Poisoning is swallowed (parking_lot locks do not poison),
//! which matches the semantics callers wrote against.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` returns the guard directly, parking_lot-style.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
