//! Offline stand-in for [rayon](https://docs.rs/rayon).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! *API surface* it actually uses. Parallel iterators are mapped onto plain
//! sequential `std` iterators: every adapter (`map`, `zip`, `sum`,
//! `collect`, …) then works unchanged because the returned types *are*
//! `std::iter` types. This is semantically identical to rayon for the
//! deterministic, order-preserving way the workspace uses it; wall-clock
//! parallel speedups are the only thing lost, and all performance claims in
//! this repo are made by the `gpu-sim` analytic cost model, not host timing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The traits users normally get from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut, ParallelSort,
    };
}

/// `.into_par_iter()` — consuming conversion (ranges, `Vec`, …).
pub trait IntoParallelIterator {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_iter()` — borrowing conversion.
pub trait IntoParallelRefIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item: 'data;
    /// Iterate by shared reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_iter_mut()` — mutable borrowing conversion.
pub trait IntoParallelRefMutIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item: 'data;
    /// Iterate by exclusive reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_chunks()` on slices.
pub trait ParallelSlice<T> {
    /// Chunked shared iteration.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T> {
    /// Chunked exclusive iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `.par_sort_*()` on slices.
pub trait ParallelSort<T> {
    /// Stable sort by comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    /// Unstable natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
}

impl<T> ParallelSort<T> for [T] {
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_by(compare);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }
}

/// Ambient "pool" width reported by [`current_num_threads`]; `install`
/// scopes a logical width the way rayon pools do.
static CURRENT_WIDTH: AtomicUsize = AtomicUsize::new(0);

/// Logical number of threads of the ambient pool.
pub fn current_num_threads() -> usize {
    let w = CURRENT_WIDTH.load(Ordering::Relaxed);
    if w != 0 {
        return w;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type returned by [`ThreadPoolBuilder::build`]. Never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the sequential shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Request a logical pool width (recorded, not spawned).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (logical) pool. Infallible here.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A logical thread pool: `install` runs the closure on the calling thread
/// while advertising the pool's width through [`current_num_threads`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_WIDTH.swap(self.num_threads, Ordering::Relaxed);
        let r = op();
        CURRENT_WIDTH.store(prev, Ordering::Relaxed);
        r
    }

    /// The width this pool advertises.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `rayon::join` — runs both closures (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_adapters_work() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().sum();
        assert_eq!(s, 10);
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let r: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunks_and_sort() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        let mut out = vec![0u32; 4];
        out.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(out, vec![0, 0, 1, 1]);
    }

    #[test]
    fn pool_install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 7);
        assert_ne!(current_num_threads(), 0);
    }
}
