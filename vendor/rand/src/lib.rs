//! Offline stand-in for [rand 0.8](https://docs.rs/rand/0.8).
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods (`gen`, `gen_range`, `gen_bool`) over a xoshiro256++ generator.
//! Streams differ from upstream rand — all in-repo users are synthetic
//! dataset generators whose tests assert *distributional* properties
//! (entropy targets, determinism per seed), not exact byte streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }
}
